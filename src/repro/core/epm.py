"""The EPM clustering facade: dataset in, E/P/M clusters out.

:class:`EPMClustering` runs the four phases over each dimension of an
:class:`~repro.egpm.dataset.SGNetDataset` and returns an
:class:`EPMResult` holding the three
:class:`~repro.core.classifier.DimensionClustering` objects plus
cross-dimension conveniences: per-sample M-cluster lookup, per-event
(E, P, M) coordinates, and the Table 1 invariant-count report.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.core.classifier import DimensionClustering
from repro.core.features import Dimension, FeatureSet, default_feature_sets
from repro.core.invariants import (
    InvariantPolicy,
    Observation,
    discover_invariants,
    discover_invariants_columnar,
)
from repro.core.patterns import PatternSet
from repro.egpm.dataset import SGNetDataset
from repro.obs import metrics as obs_metrics
from repro.util.parallel import Executor, SerialExecutor
from repro.util.validation import require


@dataclass
class EPMResult:
    """Outcome of one EPM clustering run."""

    dimensions: dict[Dimension, DimensionClustering]
    policy: InvariantPolicy

    @property
    def epsilon(self) -> DimensionClustering:
        """The E-cluster assignment."""
        return self.dimensions[Dimension.EPSILON]

    @property
    def pi(self) -> DimensionClustering:
        """The P-cluster assignment."""
        return self.dimensions[Dimension.PI]

    @property
    def mu(self) -> DimensionClustering:
        """The M-cluster assignment."""
        return self.dimensions[Dimension.MU]

    def counts(self) -> dict[str, int]:
        """Number of E-, P- and M-clusters (the §4.1 headline)."""
        return {
            "e_clusters": self.epsilon.n_clusters,
            "p_clusters": self.pi.n_clusters,
            "m_clusters": self.mu.n_clusters,
        }

    def table1(self) -> dict[Dimension, dict[str, int]]:
        """Invariant counts per feature per dimension (Table 1)."""
        return {
            dim: clustering.invariants.count_per_feature()
            for dim, clustering in self.dimensions.items()
        }

    def coordinates(self, event_id: int) -> tuple[int | None, int | None, int | None]:
        """The (E, P, M) cluster coordinates of one event."""
        return (
            self.epsilon.cluster_of(event_id),
            self.pi.cluster_of(event_id),
            self.mu.cluster_of(event_id),
        )

    def m_cluster_of_samples(self, dataset: SGNetDataset) -> dict[str, int]:
        """MD5 -> M-cluster id.

        Mu features are sample-level (every event carrying a given MD5
        extracts the same mu tuple), so the mapping is well defined; the
        invariant is asserted while building it.
        """
        mapping: dict[str, int] = {}
        for event in dataset.events:
            if event.malware is None:
                continue
            cluster = self.mu.cluster_of(event.event_id)
            if cluster is None:
                continue
            md5 = event.malware.md5
            previous = mapping.get(md5)
            require(
                previous is None or previous == cluster,
                f"sample {md5} classified into two M-clusters",
            )
            mapping[md5] = cluster
        return mapping


class EPMClustering:
    """Configured EPM clustering, reusable across datasets."""

    def __init__(
        self,
        policy: InvariantPolicy | None = None,
        feature_sets: dict[Dimension, FeatureSet] | None = None,
        *,
        min_pattern_support: int = 1,
    ) -> None:
        self.policy = policy or InvariantPolicy()
        #: Whether the default feature sets are in play — they can be
        #: rebuilt inside a worker process, while custom ones may carry
        #: closures that cannot cross a process boundary.
        self._default_feature_sets = feature_sets is None
        self.feature_sets = feature_sets or default_feature_sets()
        require(min_pattern_support >= 1, "min_pattern_support must be >= 1")
        self.min_pattern_support = min_pattern_support

    def fit_dimension(
        self, dataset: SGNetDataset, feature_set: FeatureSet
    ) -> DimensionClustering:
        """Run phases 2-4 for one dimension."""
        observations: list[Observation] = []
        instances: dict[int, tuple] = {}
        for event in dataset.events:
            if not feature_set.applies_to(event):
                continue
            values = feature_set.extract(event)
            observations.append((values, int(event.source), int(event.sensor)))
            instances[event.event_id] = values
        invariants = discover_invariants(
            observations, feature_set.names, self.policy
        )
        pattern_set = PatternSet.discover(
            (values for values, _s, _d in observations),
            invariants,
            min_support=self.min_pattern_support,
        )
        return DimensionClustering(
            dimension=feature_set.dimension,
            feature_names=feature_set.names,
            invariants=invariants,
            pattern_set=pattern_set,
            instances=instances,
        )

    def fit_dimension_columnar(self, columns) -> DimensionClustering:
        """Run phases 2-4 for one dimension from its columnar view.

        ``columns`` is a :class:`~repro.egpm.columnar.DimensionColumns`.
        Invariant discovery runs as the vectorized kernel over the code
        matrix; pattern discovery and classification consume the decoded
        value tuples, which are exactly what :meth:`fit_dimension`
        extracts event by event — so the resulting clustering is
        value-for-value identical to the row-wise path.
        """
        value_tuples = columns.value_tuples()
        invariants = discover_invariants_columnar(
            columns.codes,
            columns.source_codes,
            columns.sensor_codes,
            [vocab.values() for vocab in columns.vocabularies],
            columns.feature_names,
            self.policy,
        )
        pattern_set = PatternSet.discover(
            iter(value_tuples), invariants, min_support=self.min_pattern_support
        )
        return DimensionClustering(
            dimension=columns.dimension,
            feature_names=list(columns.feature_names),
            invariants=invariants,
            pattern_set=pattern_set,
            instances=dict(zip(columns.event_ids.tolist(), value_tuples)),
        )

    def fit(
        self,
        dataset: SGNetDataset,
        *,
        executor: Executor | None = None,
        columnar: bool = False,
    ) -> EPMResult:
        """Run EPM clustering over all three dimensions.

        The dimension fits are independent, so a parallel ``executor``
        runs them concurrently; each fit is a pure function of
        ``(dataset, feature_set, policy)``, so results are bit-identical
        on every backend.  Custom feature sets (which may close over
        local state) fall back to in-process fitting under the process
        backend.  With ``columnar=True`` the fits run in-process over
        the dataset's columnar view and the vectorized invariant
        kernel — same results, one batch aggregation instead of a
        Python loop per event.
        """
        require(len(dataset) > 0, "cannot cluster an empty dataset")
        executor = executor or SerialExecutor()
        dimensions = list(self.feature_sets)
        if columnar:
            store = dataset.to_columnar(
                None if self._default_feature_sets else self.feature_sets
            )
            fitted = [
                self.fit_dimension_columnar(store.dimensions[dimension])
                for dimension in dimensions
            ]
            return self._record_result(dimensions, fitted)
        # Every backend takes the same executor.map path (so the
        # chunk-level ``executor.*`` telemetry and events agree across
        # serial/thread/process); only the worker callable differs.
        # Default feature sets pickle as a module-level partial; custom
        # feature sets may close over local state, so they use a
        # closure on in-process backends and fall back to a sequential
        # fit only under the process backend, where they cannot ship.
        if self._default_feature_sets:
            fitted = executor.map(
                partial(
                    _fit_default_dimension,
                    dataset,
                    self.policy,
                    self.min_pattern_support,
                ),
                dimensions,
            )
        elif executor.backend == "process":
            fitted = [
                self.fit_dimension(dataset, self.feature_sets[dimension])
                for dimension in dimensions
            ]
        else:
            fitted = executor.map(
                lambda dimension: self.fit_dimension(
                    dataset, self.feature_sets[dimension]
                ),
                dimensions,
            )
        return self._record_result(dimensions, fitted)

    def _record_result(
        self,
        dimensions: list[Dimension],
        fitted: list[DimensionClustering],
    ) -> EPMResult:
        result = EPMResult(dimensions=dict(zip(dimensions, fitted)), policy=self.policy)
        # Recorded post-gather from the fitted artifacts, so the counts
        # are identical on every backend (per-chunk worker telemetry is
        # captured and merged separately by the executor layer).
        registry = obs_metrics.active()
        for dimension, clustering in result.dimensions.items():
            label = dimension.value
            registry.counter("epm.observations", dimension=label).inc(
                clustering.n_instances
            )
            registry.counter("epm.invariants_discovered", dimension=label).inc(
                clustering.invariants.total_invariants
            )
            registry.counter("epm.patterns_discovered", dimension=label).inc(
                len(clustering.pattern_set)
            )
            registry.gauge("epm.clusters", dimension=label).set(clustering.n_clusters)
        return result


def _fit_default_dimension(
    dataset: SGNetDataset,
    policy: InvariantPolicy,
    min_pattern_support: int,
    dimension: Dimension,
) -> DimensionClustering:
    """Process-pool worker: rebuild the default feature set locally and fit."""
    clustering = EPMClustering(
        policy=policy, min_pattern_support=min_pattern_support
    )
    return clustering.fit_dimension(dataset, default_feature_sets()[dimension])
