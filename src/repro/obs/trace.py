"""Hierarchical trace spans: the generalisation of ``StageTimer``.

A :class:`Tracer` maintains a stack of open :class:`TraceSpan`s; every
``tracer.span(name)`` block becomes a child of the innermost open span,
so nested instrumentation (a scenario stage opening LSH sub-phases)
yields a tree rather than a flat stage list.  Spans carry arbitrary
attributes (sample counts, cache status, candidate-pair counts) set via
:meth:`TraceSpan.set`.

Like the metrics registry, the tracer is ambient: library code opens
spans on the *current* tracer (:func:`current_tracer`), which defaults
to a shared no-op, so un-orchestrated calls cost almost nothing.  The
scenario runner installs a real tracer via :func:`use_tracer`, exports
the finished root with :meth:`TraceSpan.export`, and derives the
backward-compatible flat :class:`~repro.util.timing.StageTimings` view
from the root's direct children (:meth:`TraceSpan.stage_timings`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs import events as obs_events
from repro.util.timing import StageTiming, StageTimings
from repro.util.validation import require


@dataclass
class TraceSpan:
    """One named span of work: duration, attributes, child spans."""

    name: str
    seconds: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    children: list["TraceSpan"] = field(default_factory=list)
    #: Offset of the span's open relative to the tracer's epoch, in
    #: seconds.  ``None`` on hand-built trees; the tracer always sets
    #: it, which is what gives the Chrome-trace exporter real
    #: timestamps instead of a synthesized sequential layout.
    start: float | None = None

    def set(self, **attributes: object) -> None:
        """Attach/overwrite attributes on this span."""
        self.attributes.update(attributes)

    def child(self, name: str) -> "TraceSpan":
        """Create and append a child span (untimed; the tracer times it)."""
        require(bool(name), "span name must be non-empty")
        span = TraceSpan(name)
        self.children.append(span)
        return span

    def find(self, name: str) -> "TraceSpan | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator[tuple[int, "TraceSpan"]]:
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack: list[tuple[int, TraceSpan]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def export(self) -> dict:
        """The JSON-ready span tree (used by run manifests)."""
        payload: dict = {"name": self.name, "seconds": round(self.seconds, 6)}
        if self.start is not None:
            payload["start"] = round(self.start, 6)
        if self.attributes:
            payload["attributes"] = {
                key: self.attributes[key] for key in sorted(self.attributes)
            }
        if self.children:
            payload["children"] = [child.export() for child in self.children]
        return payload

    def stage_timings(self) -> StageTimings:
        """Flat per-stage view over the direct children (legacy shape)."""
        return StageTimings(
            stages=[StageTiming(child.name, child.seconds) for child in self.children]
        )

    def render(self) -> str:
        """Human-readable tree with durations, shares and attributes."""
        rows: list[tuple[str, float, float, str]] = []
        total = self.seconds or sum(c.seconds for c in self.children) or 1.0
        for depth, span in self.walk():
            label = "  " * depth + span.name
            attrs = " ".join(
                f"{key}={span.attributes[key]}" for key in sorted(span.attributes)
            )
            rows.append((label, span.seconds, span.seconds / total, attrs))
        width = max(len(label) for label, _s, _f, _a in rows)
        lines = []
        for label, seconds, share, attrs in rows:
            line = f"{label:<{width}}  {seconds:9.3f} s  {share:6.1%}"
            if attrs:
                line += f"  {attrs}"
            lines.append(line)
        return "\n".join(lines)


class Tracer:
    """Stack-shaped span recorder; the root span is the whole run.

    With ``profile=True`` every span additionally records per-span CPU
    time, peak RSS and GC collections as span attributes (see
    :class:`repro.obs.profile.SpanProbe`).  Profiling is opt-in because
    the probes cost a few syscalls per span; plain wall-clock tracing
    stays the near-free default.
    """

    def __init__(self, name: str = "run", *, profile: bool = False) -> None:
        self.root = TraceSpan(name, start=0.0)
        self._stack: list[TraceSpan] = [self.root]
        self._epoch = time.perf_counter()
        self._probe = None
        if profile:
            # Deferred import: repro.obs.profile also hosts the span-tree
            # exporters, which operate on exported trees and never import
            # this module back.
            from repro.obs.profile import SpanProbe

            self._probe = SpanProbe()

    @property
    def profiling(self) -> bool:
        """Whether spans record CPU/RSS/GC probes."""
        return self._probe is not None

    @property
    def current(self) -> TraceSpan:
        """The innermost open span."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[TraceSpan]:
        """Open a child of the current span for the duration of the block.

        Every span open/close is also announced on the ambient event
        bus (``stage.start`` / ``stage.finish``), so a tailed event
        stream shows the same stage structure the manifest's span tree
        records after the fact — the two views are cross-checked by
        ``repro obs validate``.
        """
        span = self.current.child(name)
        if attributes:
            span.set(**attributes)
        self._stack.append(span)
        bus = obs_events.active_bus()
        bus.emit("stage.start", stage=name, depth=len(self._stack) - 1)
        token = self._probe.begin() if self._probe is not None else None
        started = time.perf_counter()
        span.start = started - self._epoch
        try:
            yield span
        finally:
            span.seconds += time.perf_counter() - started
            if self._probe is not None:
                span.set(**self._probe.end(token))
            self._stack.pop()
            bus.emit("stage.finish", stage=name, seconds=round(span.seconds, 6))

    def finish(self) -> TraceSpan:
        """Close out: the root's duration becomes the sum of its children."""
        require(len(self._stack) == 1, "cannot finish a tracer with open spans")
        if not self.root.seconds:
            self.root.seconds = sum(child.seconds for child in self.root.children)
        return self.root


class _NullSpan:
    """Shared throwaway span handed out by the null tracer."""

    __slots__ = ()

    def set(self, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: spans are free and record nothing."""

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[_NullSpan]:
        yield _NULL_SPAN


#: The process-wide default: tracing off.
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The tracer instrumentation sites currently open spans on."""
    return _active


def activate_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the current one; returns the previous."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Activate ``tracer`` for the duration of the block."""
    previous = activate_tracer(tracer)
    try:
        yield tracer
    finally:
        activate_tracer(previous)
