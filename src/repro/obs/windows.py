"""Per-window semantic telemetry: the landscape folded onto a time axis.

The rest of the obs layer watches the pipeline's *mechanics* — stage
timings, cache hits, executor chunk latencies.  This module watches the
*landscape semantics* those mechanics produce, the way the paper reads
its 17-month SGNET window: attack events, newly collected binaries and
newly discovered E/P/M patterns per time window, how many clusters each
observation perspective keeps active, how much the cluster population
churns, and — the paper's core signal — how well the static (M) and
behavioural (B) perspectives still *agree* window by window
(:class:`~repro.analysis.crossview.CrossView` counts plus a pairwise-F1
agreement score from :mod:`repro.analysis.quality`).

A :class:`WindowReport` is a pure function of the run's artifacts
(dataset, EPM clustering, B-clustering): no wall-clock field ever
enters it, so serial/thread/process executions of one scenario produce
*byte-identical* reports — enforced by :meth:`WindowReport.digest`
checks in the determinism tests.  Reports persist next to the run
manifest in the longitudinal store
(``results/runs/<fingerprint>/<run_id>.windows.json``) and feed the
SLO/anomaly engine (:mod:`repro.obs.health`) and the terminal dashboard
(:mod:`repro.obs.dashboard`).

Like :func:`repro.obs.manifest.build_manifest`, the builder only reads
public run artifacts and defers its two upward imports (the cross-view
join and the pairwise-F1 scorer from :mod:`repro.analysis`), so the obs
layer still imports standalone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.util.canonical import canonical_digest
from repro.util.validation import require

#: Window-report schema version; bump on incompatible layout changes.
WINDOWS_SCHEMA = 1

#: Default window width (weeks folded into one series point).
DEFAULT_WINDOW_WEEKS = 4

#: Every series a report carries, in render order.  ``agreement`` is the
#: per-window pairwise-F1 of the B-clustering against the M-clustering
#: (restricted to samples active in the window); everything else is a
#: count.  Mirrored in ``docs/ARCHITECTURE.md``'s window-series table.
WINDOW_SERIES = (
    "events",
    "sensor_groups",
    "new_samples",
    "new_patterns",
    "e_clusters",
    "p_clusters",
    "m_clusters",
    "b_clusters",
    "m_churn",
    "b_churn",
    "joint_samples",
    "agreement",
)


@dataclass
class WindowReport:
    """Per-window series of one run's landscape semantics."""

    fingerprint: str
    seed: int
    window_weeks: int
    n_windows: int
    #: Series name -> one value per window (``WINDOW_SERIES`` keys).
    series: dict[str, list[float]] = field(default_factory=dict)
    #: Whole-run :meth:`~repro.analysis.crossview.CrossView.summary`.
    crossview: dict[str, int] = field(default_factory=dict)
    schema: int = WINDOWS_SCHEMA

    def as_dict(self) -> dict:
        """Plain-dict form (the JSON layout), series key-sorted."""
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "window_weeks": self.window_weeks,
            "n_windows": self.n_windows,
            "series": {name: list(self.series[name]) for name in sorted(self.series)},
            "crossview": dict(sorted(self.crossview.items())),
        }

    def to_json(self) -> str:
        """Deterministic JSON encoding (sorted keys)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """Canonical content address of the report.

        A pure function of the run's artifacts: two executions of one
        ``(seed, config)`` must agree on it byte-for-byte regardless of
        executor backend — the windowed cousin of the manifest's
        artifact digests.
        """
        return canonical_digest(self.as_dict())

    def window_row(self, window: int) -> dict[str, float]:
        """Every series value of one window (``window.rollup`` fields)."""
        require(0 <= window < self.n_windows, f"window {window} out of range")
        return {name: self.series[name][window] for name in sorted(self.series)}

    def write(self, path: str | Path) -> Path:
        """Persist the report as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WindowReport":
        """Rebuild a report from its :meth:`as_dict` form."""
        require(
            payload.get("schema") == WINDOWS_SCHEMA,
            f"unsupported window report schema {payload.get('schema')!r}",
        )
        series = {
            str(name): [float(v) for v in values]
            for name, values in dict(payload.get("series", {})).items()
        }
        return cls(
            fingerprint=str(payload.get("fingerprint", "")),
            seed=int(payload.get("seed", 0)),
            window_weeks=int(payload["window_weeks"]),
            n_windows=int(payload["n_windows"]),
            series=series,
            crossview={
                str(k): int(v)
                for k, v in dict(payload.get("crossview", {})).items()
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "WindowReport":
        """Read a report back from :meth:`write` output."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


def build_window_report(
    dataset,
    epm,
    bclusters,
    grid,
    *,
    seed: int,
    fingerprint: str,
    window_weeks: int = DEFAULT_WINDOW_WEEKS,
) -> WindowReport:
    """Fold a run's artifacts into per-window series.

    One pass over the events and one over the samples; everything else
    is set arithmetic over cluster ids.  ``fingerprint`` is supplied by
    the caller (the scenario layer owns the fingerprint function), like
    :func:`repro.obs.manifest.build_manifest`.
    """
    require(window_weeks >= 1, "window_weeks must be >= 1")
    # Deferred upward imports (see module docstring): the cross-view
    # join and the pair-counting agreement score live in the analysis
    # layer, which the obs package must not import at module scope.
    from repro.analysis.crossview import CrossView
    from repro.analysis.quality import pairwise_f1
    from repro.util.timegrid import WEEK_SECONDS

    n_windows = -(-grid.n_weeks // window_weeks)
    counts = {
        name: [0] * n_windows
        for name in WINDOW_SERIES
        if name not in ("agreement",)
    }
    active: dict[str, list[set]] = {
        name: [set() for _ in range(n_windows)]
        for name in (
            "sensor_groups",
            "e_clusters",
            "p_clusters",
            "m_clusters",
            "b_clusters",
        )
    }
    crossview = CrossView(dataset, epm, bclusters)
    m_of_sample = crossview.m_of_sample
    b_of_sample = crossview.b_of_sample
    joint = set(crossview.joint_samples)
    joint_active: list[set] = [set() for _ in range(n_windows)]
    seen_patterns: set[tuple[int, int, int]] = set()
    seen_m: set[int] = set()
    seen_b: set[int] = set()

    # The event pass runs once per event of the full dataset, so the
    # per-event telemetry cost is what the windows-overhead bench gates;
    # hoist the three assignment maps (skipping the coordinates() call
    # stack) and fold the week/window arithmetic into one division.
    e_of = epm.epsilon.assignment.get
    p_of = epm.pi.assignment.get
    m_of = epm.mu.assignment.get
    grid_start = grid.start
    window_seconds = WEEK_SECONDS * window_weeks

    for event in dataset.events:
        window = (event.timestamp - grid_start) // window_seconds
        counts["events"][window] += 1
        active["sensor_groups"][window].add(int(event.sensor) >> 8)
        event_id = event.event_id
        e = e_of(event_id)
        p = p_of(event_id)
        m = m_of(event_id)
        if e is not None:
            active["e_clusters"][window].add(e)
        if p is not None:
            active["p_clusters"][window].add(p)
        if m is not None:
            active["m_clusters"][window].add(m)
        if e is not None and p is not None and m is not None:
            pattern = (e, p, m)
            if pattern not in seen_patterns:
                seen_patterns.add(pattern)
                counts["new_patterns"][window] += 1
        if event.malware is None:
            continue
        md5 = event.malware.md5
        b = b_of_sample.get(md5)
        if b is not None:
            active["b_clusters"][window].add(b)
        if md5 in joint:
            joint_active[window].add(md5)

    for record in dataset.samples.values():
        counts["new_samples"][(record.first_seen - grid_start) // window_seconds] += 1

    agreement: list[float] = []
    for window in range(n_windows):
        for name, sets in active.items():
            counts[name][window] = len(sets[window])
        members = joint_active[window]
        counts["joint_samples"][window] = len(members)
        # Churn: cluster ids whose first active window is this one —
        # the per-window face of the landscape's population turnover.
        fresh_m = active["m_clusters"][window] - seen_m
        fresh_b = active["b_clusters"][window] - seen_b
        seen_m |= active["m_clusters"][window]
        seen_b |= active["b_clusters"][window]
        counts["m_churn"][window] = len(fresh_m)
        counts["b_churn"][window] = len(fresh_b)
        if members:
            score = pairwise_f1(
                {md5: b_of_sample[md5] for md5 in members},
                {md5: m_of_sample[md5] for md5 in members},
            )
        else:
            score = 1.0  # vacuous agreement: nothing to disagree about
        agreement.append(round(score, 6))

    series: dict[str, list[float]] = {
        name: [float(v) for v in counts[name]]
        for name in WINDOW_SERIES
        if name != "agreement"
    }
    series["agreement"] = agreement
    return WindowReport(
        fingerprint=fingerprint,
        seed=seed,
        window_weeks=window_weeks,
        n_windows=n_windows,
        series=series,
        crossview=crossview.summary(),
    )
