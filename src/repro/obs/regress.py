"""Trend-aware regression detection over the cross-run frame.

``obs diff`` answers "did this run move against *that* run"; the drift
gate it powers is only as good as its single committed reference.  This
module replaces that pairwise check with changepoint-style detection
over the **run-ordered series** a :class:`~repro.obs.query.QueryFrame`
yields per configuration fingerprint — the longitudinal analogue of
:mod:`repro.obs.health`'s in-run rule engine:

* ``band`` — tolerance bands around the trailing median, the same
  semantics as ``obs diff``'s timing flags (ratio tolerance plus an
  absolute noise floor) but anchored to the history's median rather
  than one reference value.  Catches step changes immediately, even
  from a perfectly constant history.
* ``ewma`` — the EWMA z-score scan of ``health.py``, pointed across
  runs instead of across windows: each run is scored against the
  exponentially weighted mean/variance of the runs before it.  Catches
  drifts a band around the median absorbs.
* ``page_hinkley`` — a two-sided Page-Hinkley changepoint test, the
  classic sequential drift detector (see the online-clustering papers
  in PAPERS.md): cumulative deviation from the running mean, drift
  margin ``delta``, alarm threshold ``lambda``, both scaled by the
  series' own magnitude so one rule set serves counts and seconds
  alike.  Catches slow creeps no single step trips.

Findings carry ``(detector, target)`` identity keys so a baseline
report suppresses known regressions the way ``health.new_findings``
does — CI gates only on *new* ones.  Timing targets (``span:``) default
to ``warning`` severity: wall-clock is machine-dependent, and the CI
gate runs ``--fail-on critical`` so hosts cannot turn the build red,
while semantic metric targets gate at ``critical``.

The CLI front-end is ``repro obs regress`` (see :mod:`repro.cli`); the
perf gate (:mod:`repro.experiments.perf_gate`) runs the same detectors
over its replay matrix as a self-test.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.obs.health import SEVERITIES, _SEVERITY_RANK
from repro.obs.query import QueryFrame, aggregate, parse_target
from repro.util.canonical import canonical_digest
from repro.util.validation import require

#: Regression-report schema version; bump on incompatible changes.
REGRESS_SCHEMA = 1

#: Detectors the engine runs (``RegressRule.detectors`` entries).
DETECTORS = ("band", "ewma", "page_hinkley")

#: EWMA smoothing factor (same trailing window as the health engine).
EWMA_ALPHA = 0.3

#: Runs of history a trailing estimate needs before EWMA/Page-Hinkley
#: may flag anything — three points, like ``health.MIN_HISTORY``.
MIN_HISTORY = 3

#: Band defaults mirror ``repro.obs.diff``: flag when a value leaves
#: ``[median/tolerance, median*tolerance]`` and the absolute move also
#: clears the noise floor.
DEFAULT_TIMING_TOLERANCE = 1.5
DEFAULT_METRIC_TOLERANCE = 1.25
TIMING_NOISE_FLOOR = 0.05

#: Page-Hinkley margins, relative to the series' running mean magnitude:
#: drift allowance ``delta`` and alarm threshold ``lambda``.
PH_DELTA_REL = 0.02
PH_LAMBDA_REL = 0.25


@dataclass(frozen=True)
class RegressRule:
    """One target's regression policy: which detectors, how touchy."""

    name: str
    #: ``metric:``/``series:``/``golden:``/``span:`` selector.
    target: str
    severity: str
    detectors: tuple[str, ...] = DETECTORS
    #: Band ratio tolerance (>= 1.0) around the trailing median.
    tolerance: float = DEFAULT_METRIC_TOLERANCE
    #: Absolute band floor: moves smaller than this never flag.
    noise_floor: float = 0.0
    #: EWMA z-score alarm threshold.
    zscore: float = 4.0
    #: Page-Hinkley relative drift margin and alarm threshold.
    ph_delta: float = PH_DELTA_REL
    ph_lambda: float = PH_LAMBDA_REL
    #: Human framing of why the target matters (rendered with findings).
    detail: str = ""

    def __post_init__(self) -> None:
        require(self.severity in SEVERITIES, f"unknown severity {self.severity!r}")
        require(bool(self.detectors), f"rule {self.name!r} runs no detectors")
        for detector in self.detectors:
            require(detector in DETECTORS, f"unknown detector {detector!r}")
        require(self.tolerance >= 1.0, "band tolerance must be >= 1.0")
        parse_target(self.target)  # fail fast on a malformed selector


@dataclass(frozen=True)
class RegressionFinding:
    """One detector alarm: which run moved, on which target, how far."""

    detector: str
    rule: str
    target: str
    severity: str
    fingerprint: str
    #: The run the detector flagged.
    run_id: str
    #: Position of that run in its fingerprint's run-ordered series.
    position: int
    value: float
    #: Detector-specific reference: band median, EWMA mean, PH mean.
    reference: float
    #: Detector-specific score: band ratio, z-score, PH statistic.
    score: float
    threshold: float
    detail: str = ""

    def key(self) -> tuple[str, str]:
        """Identity for baseline suppression: ``(detector, target)``.

        Deliberately coarse — no run id, no position — so a known
        regression stays suppressed as later runs keep re-tripping the
        same detector on the same target, exactly like a health
        baseline absorbing a known warning.
        """
        return (self.detector, self.target)

    def as_dict(self) -> dict:
        return {
            "detector": self.detector,
            "rule": self.rule,
            "target": self.target,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
            "run_id": self.run_id,
            "position": self.position,
            "value": round(float(self.value), 9),
            "reference": round(float(self.reference), 9),
            "score": round(float(self.score), 9),
            "threshold": round(float(self.threshold), 9),
            "detail": self.detail,
        }

    def render(self) -> str:
        line = (
            f"{self.severity.upper():<8} {self.target} [{self.detector}] "
            f"run {self.run_id} (#{self.position}): {self.value:g} "
            f"vs {self.reference:g} (score {self.score:g}, "
            f"threshold {self.threshold:g})"
        )
        return f"{line} — {self.detail}" if self.detail else line


@dataclass
class RegressionReport:
    """Severity-ranked detector alarms of one frame scan."""

    findings: list[RegressionFinding] = field(default_factory=list)
    rules_evaluated: int = 0
    runs_scanned: int = 0
    fingerprints_scanned: int = 0
    schema: int = REGRESS_SCHEMA

    def summary(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst(self) -> str | None:
        if not self.findings:
            return None
        return self.findings[0].severity

    def at_or_above(self, severity: str) -> list[RegressionFinding]:
        require(severity in SEVERITIES, f"unknown severity {severity!r}")
        floor = _SEVERITY_RANK[severity]
        return [f for f in self.findings if _SEVERITY_RANK[f.severity] >= floor]

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "rules_evaluated": self.rules_evaluated,
            "runs_scanned": self.runs_scanned,
            "fingerprints_scanned": self.fingerprints_scanned,
            "summary": self.summary(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """Canonical content address (determinism-checked in tests)."""
        return canonical_digest(self.as_dict())

    def render(self) -> str:
        counts = self.summary()
        head = ", ".join(
            f"{counts[severity]} {severity}"
            for severity in reversed(SEVERITIES)
            if counts[severity]
        )
        lines = [
            f"regress: {len(self.findings)} finding(s) ({head or 'clean'}) "
            f"from {self.rules_evaluated} rule(s) over {self.runs_scanned} "
            f"run(s) in {self.fingerprints_scanned} configuration(s)"
        ]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RegressionReport":
        require(
            payload.get("schema") == REGRESS_SCHEMA,
            f"unsupported regression report schema {payload.get('schema')!r}",
        )
        findings = [
            RegressionFinding(
                detector=str(raw["detector"]),
                rule=str(raw["rule"]),
                target=str(raw["target"]),
                severity=str(raw["severity"]),
                fingerprint=str(raw.get("fingerprint", "")),
                run_id=str(raw["run_id"]),
                position=int(raw["position"]),
                value=float(raw["value"]),
                reference=float(raw["reference"]),
                score=float(raw["score"]),
                threshold=float(raw["threshold"]),
                detail=str(raw.get("detail", "")),
            )
            for raw in payload.get("findings", [])
        ]
        return cls(
            findings=findings,
            rules_evaluated=int(payload.get("rules_evaluated", 0)),
            runs_scanned=int(payload.get("runs_scanned", 0)),
            fingerprints_scanned=int(payload.get("fingerprints_scanned", 0)),
        )


def _metric_rule(name: str, target: str, detail: str) -> RegressRule:
    return RegressRule(
        name=name,
        target=target,
        severity="critical",
        tolerance=DEFAULT_METRIC_TOLERANCE,
        detail=detail,
    )


def _timing_rule(name: str, target: str) -> RegressRule:
    # Wall-clock is machine-dependent: warning severity, the looser
    # obs-diff timing tolerance, and a noise floor so sub-50ms jitter
    # never alarms.  CI gates at critical, so these inform, not gate.
    return RegressRule(
        name=name,
        target=target,
        severity="warning",
        tolerance=DEFAULT_TIMING_TOLERANCE,
        noise_floor=TIMING_NOISE_FLOOR,
        detail="wall-clock trend (machine-dependent; never gates CI)",
    )


#: Semantic metric rules: deterministic telemetry, gate-grade.
METRIC_RULES: tuple[RegressRule, ...] = (
    _metric_rule(
        "bcluster-count",
        "metric:lsh.clusters",
        "behavioural cluster count moved against its own history",
    ),
    _metric_rule(
        "epm-pattern-count",
        "metric:epm.patterns_discovered",
        "EPM pattern count moved against its own history",
    ),
    _metric_rule(
        "sample-volume",
        "metric:honeypot.samples_collected",
        "collected-binary volume moved against its own history",
    ),
    _metric_rule(
        "golden-deviation-count",
        "golden:deviations",
        "golden-headline deviation count moved against its own history",
    ),
)

#: Timing rules over the pipeline's span probes: informational trend.
TIMING_RULES: tuple[RegressRule, ...] = (
    _timing_rule("scenario-seconds", "span:scenario"),
    _timing_rule("observe-seconds", "span:observe"),
    _timing_rule("epm-seconds", "span:epm"),
    _timing_rule("bcluster-seconds", "span:bcluster"),
)

#: The shipped rule set.  Mirrored in ``docs/ARCHITECTURE.md``.
DEFAULT_RULES: tuple[RegressRule, ...] = METRIC_RULES + TIMING_RULES


def band_scan(rule: RegressRule, series: Sequence[float]) -> list[dict]:
    """Trailing-median tolerance band: flag steps out of the corridor.

    Each point is compared against the median of the points *before*
    it, so a step cannot mask itself; one point of history suffices
    (the ``obs diff`` pairwise check is the two-run special case).
    """
    alarms: list[dict] = []
    for position in range(1, len(series)):
        history = sorted(series[:position])
        mid = len(history) // 2
        median = (
            history[mid]
            if len(history) % 2
            else (history[mid - 1] + history[mid]) / 2.0
        )
        value = series[position]
        if abs(value - median) <= rule.noise_floor:
            continue
        if median == 0:
            ratio = math.inf if value else 1.0
        else:
            ratio = max(value / median, median / value) if value > 0 else math.inf
            if value < 0 or median < 0:  # mixed signs: always out of band
                ratio = math.inf
        if ratio > rule.tolerance:
            alarms.append(
                {
                    "position": position,
                    "value": value,
                    "reference": median,
                    "score": ratio,
                    "threshold": rule.tolerance,
                }
            )
    return alarms


def ewma_scan(rule: RegressRule, series: Sequence[float]) -> list[dict]:
    """EWMA z-score scan across runs (health.py's math, run-ordered)."""
    alarms: list[dict] = []
    mean = 0.0
    var = 0.0
    for position, value in enumerate(series):
        if position >= MIN_HISTORY and var > 0:
            z = abs(value - mean) / math.sqrt(var)
            if z > rule.zscore:
                alarms.append(
                    {
                        "position": position,
                        "value": value,
                        "reference": mean,
                        "score": round(z, 6),
                        "threshold": rule.zscore,
                    }
                )
        if position == 0:
            mean = value
            var = 0.0
        else:
            delta = value - mean
            mean += EWMA_ALPHA * delta
            var = (1 - EWMA_ALPHA) * (var + EWMA_ALPHA * delta * delta)
    return alarms


def page_hinkley_scan(rule: RegressRule, series: Sequence[float]) -> list[dict]:
    """Two-sided Page-Hinkley changepoint test over a run-ordered series.

    The upward statistic accumulates ``value - mean - delta`` and alarms
    when it exceeds its own running minimum by ``lambda``; the downward
    side mirrors it.  ``delta``/``lambda`` are relative to the series'
    running mean magnitude (fallback 1.0 near zero), so counts in the
    thousands and seconds in the tenths share one rule.  Both
    statistics stay at zero on a constant series — byte-identical
    replays can never alarm.
    """
    alarms: list[dict] = []
    mean = 0.0
    m_up = 0.0
    min_up = 0.0
    m_down = 0.0
    max_down = 0.0
    for position, value in enumerate(series):
        mean += (value - mean) / (position + 1)
        scale = max(abs(mean), 1.0)
        delta = rule.ph_delta * scale
        alarm_at = rule.ph_lambda * scale
        m_up += value - mean - delta
        min_up = min(min_up, m_up)
        m_down += value - mean + delta
        max_down = max(max_down, m_down)
        if position + 1 < MIN_HISTORY:
            continue
        ph_up = m_up - min_up
        ph_down = max_down - m_down
        score = max(ph_up, ph_down)
        if score > alarm_at:
            alarms.append(
                {
                    "position": position,
                    "value": value,
                    "reference": mean,
                    "score": round(score, 6),
                    "threshold": round(alarm_at, 6),
                }
            )
            # Restart the test after an alarm so one changepoint does
            # not cascade into an alarm on every subsequent run.
            m_up = min_up = m_down = max_down = 0.0
    return alarms


_SCANNERS = {
    "band": band_scan,
    "ewma": ewma_scan,
    "page_hinkley": page_hinkley_scan,
}


def _scalar_series(
    frame: QueryFrame, target: str
) -> tuple[list[float], list[int]]:
    """Run-ordered scalar series for ``target`` plus row positions.

    ``series:`` targets (per-window vectors) are reduced per run by
    their mean, so the cross-run series tracks "this run's typical
    window".  Rows without the telemetry are skipped, keeping the
    detectors blind to absence rather than treating it as zero.
    """
    values: list[float] = []
    positions: list[int] = []
    for position, value in enumerate(frame.column(target)):
        if isinstance(value, list):
            value = aggregate(value, "mean")
        if value is None:
            continue
        values.append(float(value))
        positions.append(position)
    return values, positions


def run_regression(
    frame: QueryFrame,
    *,
    rules: Sequence[RegressRule] = DEFAULT_RULES,
    fingerprint: str | None = None,
) -> RegressionReport:
    """Scan the frame with every rule's detectors; ranked report out.

    Series are built **per configuration fingerprint** — cross-config
    values are not comparable — and a fingerprint needs at least two
    runs to have a trend at all.  ``fingerprint`` restricts the scan to
    one configuration (prefix match, as in :meth:`QueryFrame.filter`).
    """
    if fingerprint is not None:
        frame = frame.filter(fingerprint=fingerprint)
    findings: list[RegressionFinding] = []
    groups = {
        fp: group for fp, group in frame.grouped().items() if len(group) >= 2
    }
    for fp, group in groups.items():
        for rule in rules:
            series, positions = _scalar_series(group, rule.target)
            if len(series) < 2:
                continue
            for detector in rule.detectors:
                for alarm in _SCANNERS[detector](rule, series):
                    row = group.rows[positions[alarm["position"]]]
                    findings.append(
                        RegressionFinding(
                            detector=detector,
                            rule=rule.name,
                            target=rule.target,
                            severity=rule.severity,
                            fingerprint=fp,
                            run_id=row.run_id,
                            position=alarm["position"],
                            value=float(alarm["value"]),
                            reference=float(alarm["reference"]),
                            score=float(alarm["score"]),
                            threshold=float(alarm["threshold"]),
                            detail=rule.detail,
                        )
                    )
    findings.sort(
        key=lambda f: (
            -_SEVERITY_RANK[f.severity],
            f.target,
            f.detector,
            f.position,
        )
    )
    return RegressionReport(
        findings=findings,
        rules_evaluated=len(rules),
        runs_scanned=len(frame),
        fingerprints_scanned=len(groups),
    )


def new_findings(
    report: RegressionReport, baseline: RegressionReport | None
) -> list[RegressionFinding]:
    """Findings whose ``(detector, target)`` key the baseline lacks.

    The longitudinal cousin of ``health.new_findings``: a known
    regression (already triaged, recorded in the committed baseline
    report) never re-trips the gate as history accumulates, while a
    fresh detector/target pairing does.
    """
    if baseline is None:
        return list(report.findings)
    known = {finding.key() for finding in baseline.findings}
    return [f for f in report.findings if f.key() not in known]


def relabel_timing_rules(
    rules: Sequence[RegressRule], severity: str
) -> tuple[RegressRule, ...]:
    """The rule set with every ``span:`` rule's severity replaced.

    The perf gate runs on one machine against its own freshly produced
    matrix, where timing *is* meaningful — it promotes timing rules to
    gate-grade with this helper instead of forking the rule set.
    """
    require(severity in SEVERITIES, f"unknown severity {severity!r}")
    return tuple(
        replace(rule, severity=severity)
        if rule.target.startswith("span:")
        else rule
        for rule in rules
    )
