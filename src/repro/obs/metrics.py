"""The metrics registry: counters, gauges, histograms, sketches, watermarks.

One :class:`MetricsRegistry` accumulates every instrument of a run.
Instruments are addressed by a metric name plus optional labels
(``counter("epm.patterns_discovered", dimension="mu")``); the same
``(name, labels)`` pair always returns the same instrument, so
increments from different call sites merge.  A registry freezes into a
:class:`MetricsSnapshot` — a plain-data, picklable record with a
deterministic JSON encoding (keys sorted, no wall-clock fields), which
is what rides on :class:`~repro.experiments.scenario.ScenarioRun` and
lands in ``--metrics-out`` files and benchmark records.

Instrumented code never receives a registry explicitly: it reads the
process-wide *active* registry via :func:`active`.  The default is
:data:`NULL_REGISTRY`, whose instruments are shared no-ops — with
observability disabled an instrumentation site costs two attribute
lookups and a no-op call.  Orchestrators (the scenario runner, the CLI,
tests) install a recording registry with :func:`use`.

The registry is designed for *orchestration-point* instrumentation:
bulk increments at stage boundaries, per-chunk observations gathered in
the coordinating thread.  It deliberately has no cross-thread locking
on the hot increment path; worker threads/processes must not mutate
instruments directly (the parallel executors return per-chunk data to
the coordinator, which records it).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.obs.sketch import DEFAULT_ALPHA, DEFAULT_MAX_BINS, QuantileSketch
from repro.util.validation import require

#: Default histogram buckets for latency-style observations (seconds).
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Default histogram buckets for size/cardinality-style observations.
SIZE_BUCKETS = (1.0, 10.0, 100.0, 1000.0, 10000.0)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Render ``(name, labels)`` as the canonical ``name{k=v,...}`` key.

    >>> metric_key("epm.clusters", {"dimension": "mu"})
    'epm.clusters{dimension=mu}'
    >>> metric_key("cache.hit", {})
    'cache.hit'
    """
    require(bool(name), "metric name must be non-empty")
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(key: str) -> str:
    """The metric name of a rendered key, labels stripped.

    >>> base_name("epm.clusters{dimension=mu}")
    'epm.clusters'
    """
    return key.split("{", 1)[0]


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a rendered ``name{k=v,...}`` key back into name and labels.

    >>> parse_key("executor.chunks{backend=serial}")
    ('executor.chunks', {'backend': 'serial'})
    >>> parse_key("cache.hit")
    ('cache.hit', {})
    """
    if "{" not in key:
        return key, {}
    name, _brace, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner.rstrip("}").split(","):
        if part:
            label, _eq, value = part.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        require(amount >= 0, "counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count.

    ``buckets`` are inclusive upper bounds in increasing order; one
    implicit ``+Inf`` bucket catches the overflow.  Bucket shapes are
    fixed at creation so exports are mergeable across runs.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        buckets = tuple(float(b) for b in buckets)
        require(len(buckets) >= 1, "histogram needs at least one bucket")
        require(
            all(a < b for a, b in zip(buckets, buckets[1:])),
            "histogram buckets must be strictly increasing",
        )
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile by linear interpolation.

        The estimate interpolates within the bucket the rank falls in
        (the first bucket's lower edge is 0, the overflow bucket
        reports the highest finite bound — the Prometheus convention),
        so it is exact only up to bucket resolution.  Returns ``None``
        on an empty histogram.

        >>> h = Histogram((1.0, 2.0, 4.0))
        >>> for value in (0.5, 1.5, 3.0, 3.5): h.observe(value)
        >>> h.quantile(0.5)
        2.0
        """
        require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
        return _bucket_quantile(self.buckets, self.counts, self.count, q)

    def merge(self, payload: Mapping) -> None:
        """Fold another histogram's :meth:`as_dict` payload into this one."""
        bounds, counts = _payload_buckets(payload)
        require(
            bounds == self.buckets,
            f"cannot merge histogram with buckets {bounds} into {self.buckets}",
        )
        for index, count in enumerate(counts):
            self.counts[index] += count
        self.total += float(payload.get("sum", 0.0))
        self.count += int(payload.get("count", 0))

    def as_dict(self) -> dict:
        """Export: per-bucket counts keyed by upper bound, plus sum/count."""
        cumulative: dict[str, int] = {}
        for bound, count in zip(self.buckets, self.counts):
            cumulative[repr(bound)] = count
        cumulative["+inf"] = self.counts[-1]
        return {"buckets": cumulative, "count": self.count, "sum": self.total}


class Sketch:
    """A streaming-quantile instrument over an unbounded value range.

    Thin registry wrapper around :class:`~repro.obs.sketch.QuantileSketch`:
    same ``observe`` verb as :class:`Histogram`, but resolution is a
    guaranteed *relative* error (``alpha``) instead of fixed buckets,
    and memory is capped at ``max_bins`` no matter how long the run is.
    Use it for series whose range scales with the run (chunk seconds,
    LSH bucket sizes, event inter-arrival gaps); keep histograms for
    series with a known, documented range.
    """

    __slots__ = ("state",)

    def __init__(
        self, alpha: float = DEFAULT_ALPHA, max_bins: int = DEFAULT_MAX_BINS
    ) -> None:
        self.state = QuantileSketch(alpha=alpha, max_bins=max_bins)

    @property
    def count(self) -> int:
        return self.state.count

    def observe(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        self.state.observe(value)

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (within ``alpha`` relative error)."""
        return self.state.quantile(q)

    def merge(self, payload: Mapping) -> None:
        """Fold another sketch's :meth:`as_dict` payload into this one."""
        self.state.merge(payload)

    def as_dict(self) -> dict:
        """Deterministic plain-dict export (see :mod:`repro.obs.sketch`)."""
        return self.state.as_dict()


class Watermark:
    """A high-water mark: keeps the maximum of every update.

    Unlike a :class:`Gauge` (last write wins — the right semantics for
    replayed point-in-time values), a watermark merge is commutative,
    so per-worker peaks (RSS, queue depth, backlog) fold into the same
    run-level value regardless of chunk completion order.
    """

    __slots__ = ("value", "count")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.count: int = 0

    def update(self, value: float) -> None:
        """Raise the mark to ``value`` if it is the new peak."""
        value = float(value)
        if self.count == 0 or value > self.value:
            self.value = value
        self.count += 1


def _bucket_quantile(
    bounds: tuple[float, ...], counts: Sequence[int], total: int, q: float
) -> float | None:
    """Shared quantile estimator over ``(bounds, per-bucket counts)``."""
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(bounds, counts):
        if count and cumulative + count >= rank:
            fraction = max(0.0, min(1.0, (rank - cumulative) / count))
            return lower + (bound - lower) * fraction
        cumulative += count
        lower = bound
    return bounds[-1]


def _payload_buckets(payload: Mapping) -> tuple[tuple[float, ...], list[int]]:
    """Finite bucket bounds and the full per-bucket count row of a payload."""
    raw = payload.get("buckets", {})
    bounds = tuple(sorted(float(key) for key in raw if key != "+inf"))
    counts = [int(raw[repr(bound)]) for bound in bounds]
    counts.append(int(raw.get("+inf", 0)))
    return bounds, counts


def quantile_from_payload(payload: Mapping, q: float) -> float | None:
    """:meth:`Histogram.quantile` over an exported histogram payload.

    Works on the plain-dict form snapshots and manifests carry, so the
    ``repro obs history`` time series can render quantiles of stored
    runs without rebuilding live instruments.
    """
    require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
    bounds, counts = _payload_buckets(payload)
    if not bounds:
        return None
    return _bucket_quantile(bounds, counts, int(payload.get("count", 0)), q)


#: Snapshot schema version; bump on incompatible layout changes.
#: 2: added ``sketches`` and ``watermarks`` sections (PR 9).
SNAPSHOT_SCHEMA = 2

#: Snapshot schemas :meth:`MetricsSnapshot.from_dict` accepts.  Schema
#: 1 payloads (no sketch/watermark sections) load as empty sections, so
#: stored runs written before the bump stay queryable.
SUPPORTED_SNAPSHOT_SCHEMAS = (1, 2)


@dataclass
class MetricsSnapshot:
    """A frozen, picklable export of one registry's state.

    Keys are rendered ``name{labels}`` strings; the encoding is
    deterministic (sorted keys) so two runs of the same seed produce
    byte-identical counter/gauge sections (histograms of wall-clock
    latencies may differ, by design).
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    sketches: dict[str, dict] = field(default_factory=dict)
    watermarks: dict[str, float] = field(default_factory=dict)

    def counter(self, name: str, **labels: object) -> float:
        """Value of one counter (0 if never touched)."""
        return self.counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels: object) -> float:
        """Value of one gauge (0 if never set)."""
        return self.gauges.get(metric_key(name, labels), 0)

    def watermark(self, name: str, **labels: object) -> float:
        """Value of one high-water mark (0 if never updated)."""
        return self.watermarks.get(metric_key(name, labels), 0)

    def total(self, name: str) -> float:
        """Sum of one counter across all label combinations."""
        return sum(
            value for key, value in self.counters.items() if base_name(key) == name
        )

    def names(self) -> set[str]:
        """Every distinct metric name present, labels stripped."""
        return {
            base_name(key)
            for section in (
                self.counters,
                self.gauges,
                self.histograms,
                self.sketches,
                self.watermarks,
            )
            for key in section
        }

    def as_dict(self) -> dict:
        """Plain-dict form (the JSON layout), sections key-sorted."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": dict(sorted(self.histograms.items())),
            "sketches": dict(sorted(self.sketches.items())),
            "watermarks": dict(sorted(self.watermarks.items())),
        }

    def to_json(self) -> str:
        """Deterministic JSON encoding of the snapshot."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        """Rebuild a snapshot from its :meth:`as_dict` form."""
        require(
            payload.get("schema") in SUPPORTED_SNAPSHOT_SCHEMAS,
            f"unsupported metrics snapshot schema {payload.get('schema')!r}",
        )
        return cls(
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            histograms=dict(payload.get("histograms", {})),
            sketches=dict(payload.get("sketches", {})),
            watermarks=dict(payload.get("watermarks", {})),
        )


class MetricsRegistry:
    """The live instrument store; freeze with :meth:`snapshot`."""

    #: Whether instruments actually record (False only on the null registry).
    recording = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sketches: dict[str, Sketch] = {}
        self._watermarks: dict[str, Watermark] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``(name, labels)``; buckets fix on creation."""
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.setdefault(key, Histogram(buckets))
        require(
            instrument.buckets == tuple(float(b) for b in buckets),
            f"histogram {key!r} already exists with different buckets",
        )
        return instrument

    def sketch(
        self,
        name: str,
        alpha: float = DEFAULT_ALPHA,
        max_bins: int = DEFAULT_MAX_BINS,
        **labels: object,
    ) -> Sketch:
        """The quantile sketch for ``(name, labels)``; shape fixes on
        creation (merges require an identical ``(alpha, max_bins)``)."""
        key = metric_key(name, labels)
        instrument = self._sketches.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._sketches.setdefault(key, Sketch(alpha, max_bins))
        require(
            instrument.state.alpha == float(alpha)
            and instrument.state.max_bins == int(max_bins),
            f"sketch {key!r} already exists with a different shape",
        )
        return instrument

    def watermark(self, name: str, **labels: object) -> Watermark:
        """The high-water mark for ``(name, labels)``, created on use."""
        key = metric_key(name, labels)
        instrument = self._watermarks.get(key)
        if instrument is None:
            with self._create_lock:
                instrument = self._watermarks.setdefault(key, Watermark())
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state into a plain-data snapshot."""
        return MetricsSnapshot(
            counters={key: c.value for key, c in sorted(self._counters.items())},
            gauges={key: g.value for key, g in sorted(self._gauges.items())},
            histograms={key: h.as_dict() for key, h in sorted(self._histograms.items())},
            sketches={key: s.as_dict() for key, s in sorted(self._sketches.items())},
            watermarks={key: w.value for key, w in sorted(self._watermarks.items())},
        )

    def merge_snapshot(self, snapshot: "MetricsSnapshot | Mapping") -> None:
        """Fold a snapshot's state into this registry.

        Counters add, gauges take the merged value (last write wins, so
        merging deltas in submission order reproduces a serial run),
        histograms add per-bucket counts — the merge path the parallel
        executors use to forward worker-side telemetry to the
        coordinating process (see :mod:`repro.util.parallel`).
        """
        payload = snapshot.as_dict() if isinstance(snapshot, MetricsSnapshot) else snapshot
        for key, value in payload.get("counters", {}).items():
            name, labels = parse_key(key)
            self.counter(name, **labels).inc(value)
        for key, value in payload.get("gauges", {}).items():
            name, labels = parse_key(key)
            self.gauge(name, **labels).set(value)
        for key, hist_payload in payload.get("histograms", {}).items():
            name, labels = parse_key(key)
            bounds, _counts = _payload_buckets(hist_payload)
            self.histogram(name, buckets=bounds, **labels).merge(hist_payload)
        for key, sketch_payload in payload.get("sketches", {}).items():
            name, labels = parse_key(key)
            self.sketch(
                name,
                alpha=float(sketch_payload.get("alpha", DEFAULT_ALPHA)),
                max_bins=int(sketch_payload.get("max_bins", DEFAULT_MAX_BINS)),
                **labels,
            ).merge(sketch_payload)
        for key, value in payload.get("watermarks", {}).items():
            name, labels = parse_key(key)
            self.watermark(name, **labels).update(value)


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def update(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    recording = False

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: object,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def sketch(
        self,
        name: str,
        alpha: float = DEFAULT_ALPHA,
        max_bins: int = DEFAULT_MAX_BINS,
        **labels: object,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def watermark(self, name: str, **labels: object) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()


#: The process-wide default: observability off.
NULL_REGISTRY = NullMetricsRegistry()

_active: MetricsRegistry | NullMetricsRegistry = NULL_REGISTRY

#: Per-thread override of the active registry — what lets a parallel
#: executor capture one chunk's worth of telemetry in a worker thread
#: without racing the coordinator's registry (see :func:`capture`).
_tls = threading.local()


def active() -> MetricsRegistry | NullMetricsRegistry:
    """The registry instrumentation sites currently record into.

    A thread-local :func:`capture` override wins over the process-wide
    registry installed by :func:`activate`/:func:`use`.
    """
    override = getattr(_tls, "registry", None)
    if override is not None:
        return override
    return _active


@contextmanager
def capture() -> Iterator[MetricsRegistry]:
    """Divert this thread's instrumentation into a fresh registry.

    The parallel executors run every mapped chunk under a capture so
    worker-side increments are recorded exactly once, snapshotted, and
    merged into the coordinator's registry in chunk order — identical
    totals on the serial, thread and process backends.
    """
    registry = MetricsRegistry()
    previous = getattr(_tls, "registry", None)
    _tls.registry = registry
    try:
        yield registry
    finally:
        _tls.registry = previous


def activate(
    registry: MetricsRegistry | NullMetricsRegistry,
) -> MetricsRegistry | NullMetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def use(
    registry: MetricsRegistry | NullMetricsRegistry,
) -> Iterator[MetricsRegistry | NullMetricsRegistry]:
    """Activate ``registry`` for the duration of the block."""
    previous = activate(registry)
    try:
        yield registry
    finally:
        activate(previous)
