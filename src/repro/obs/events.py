"""The live pipeline event stream: structured, sequenced, transportable.

While metrics and manifests describe a run *after the fact*, the event
stream is what makes the pipeline observable *in flight*: every stage
open/close, chunk completion, cache interaction, cluster-count
milestone and golden-deviation alert becomes one
:class:`PipelineEvent` — schema-versioned, monotonically sequenced by
the emitting :class:`EventBus`, and serialised as one JSON object per
line so a sink file can be tailed with ``repro obs tail`` (or plain
``tail -f``) while the run is still going.

Transports decouple emission from delivery:

* :class:`MemoryTransport` — an in-process list (tests, the CLI);
* :class:`RingTransport`   — a capacity-bounded buffer keeping the
  newest events, evictions counted per kind (long-lived runs);
* :class:`FileTransport`  — a JSON-lines sink, flushed per event so a
  crash loses nothing that was emitted; optional size-based rotation
  keeps disk bounded, with rotated-out events drop-accounted;
* :class:`QueueTransport` — a ``multiprocessing`` queue producer.  The
  process-pool executor installs a queue-backed bus inside each worker
  (see :mod:`repro.util.parallel`), so events emitted in workers are
  forwarded to the parent and re-sequenced onto its bus — the fix for
  the historical worker-telemetry loss;
* :class:`ProgressRenderer` — a terminal transport deriving per-stage
  item counts and an ETA (median chunk latency via
  :meth:`~repro.obs.metrics.Histogram.quantile`) from the stream.

Like the metrics registry and the tracer, the bus is ambient
(:func:`active_bus` / :func:`use_bus`) and defaults to a shared no-op,
so an un-orchestrated ``emit`` costs one attribute lookup.  Event
emission is execution-only telemetry: it never contributes to scenario
fingerprints or artifact digests, and the serial/thread/process
backends stay bit-identical on pipeline outputs with the stream on.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator, Mapping, Sequence

from repro.obs.metrics import LATENCY_BUCKETS, Histogram
from repro.obs.sketch import QuantileSketch
from repro.util.validation import require

#: Event record schema version; bump on incompatible layout changes.
EVENT_SCHEMA = 1

#: The event taxonomy.  Mirrored in ``docs/ARCHITECTURE.md``; the
#: validator (:func:`repro.obs.validate.validate_events`) flags any
#: kind outside this set, so extending the taxonomy means extending
#: this tuple (and the docs) first.
EVENT_KINDS = (
    "run.start",
    "run.finish",
    "stage.start",
    "stage.finish",
    "chunk.plan",
    "chunk.finish",
    "cache.hit",
    "cache.miss",
    "cache.store",
    "cache.evict",
    "cache.stage_hit",
    "cache.stage_miss",
    "cache.stage_store",
    "cluster.milestone",
    "golden.deviation",
    "worker.failure",
    "window.rollup",
    "health.finding",
    "health.summary",
    "transport.drop",
    "classify.start",
    "classify.finish",
)

_KNOWN_KINDS = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class PipelineEvent:
    """One sequenced occurrence on the event stream."""

    seq: int
    t: float
    kind: str
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict form (the JSON-line layout), fields key-sorted."""
        return {
            "schema": EVENT_SCHEMA,
            "seq": self.seq,
            "t": round(self.t, 6),
            "kind": self.kind,
            "fields": {key: self.fields[key] for key in sorted(self.fields)},
        }

    def to_json(self) -> str:
        """Compact single-line JSON encoding."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PipelineEvent":
        """Rebuild an event from its :meth:`as_dict` form."""
        require(
            payload.get("schema") == EVENT_SCHEMA,
            f"unsupported event schema {payload.get('schema')!r}",
        )
        return cls(
            seq=int(payload["seq"]),
            t=float(payload.get("t", 0.0)),
            kind=str(payload["kind"]),
            fields=dict(payload.get("fields", {})),
        )


def render_event(event: PipelineEvent) -> str:
    """One human-readable line per event (the ``repro obs tail`` view)."""
    fields = " ".join(f"{key}={event.fields[key]}" for key in sorted(event.fields))
    line = f"{event.seq:>6}  {event.t:9.3f}s  {event.kind:<18}"
    return f"{line} {fields}".rstrip()


class MemoryTransport:
    """Keeps every delivered event in an in-process list."""

    name = "memory"

    def __init__(self) -> None:
        self.events: list[PipelineEvent] = []

    def handle(self, event: PipelineEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


#: Default :class:`RingTransport` capacity.
DEFAULT_RING_CAPACITY = 4096


class RingTransport:
    """A capacity-bounded in-process buffer: keeps the newest events.

    The memory-transport shape a long-lived run can actually afford:
    a deque of the last ``capacity`` events, O(capacity) resident no
    matter how many stream through.  Overflow is never silent — each
    evicted event is counted per kind in :meth:`drops`, which the bus
    aggregates into ``events.dropped`` metrics and the ``transport.drop``
    accounting event at run teardown (transports must not emit on the
    bus from inside ``handle``: the bus lock is held during dispatch).
    """

    name = "ring"

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        require(capacity >= 1, "ring capacity must be >= 1")
        self.capacity = int(capacity)
        self.events: deque[PipelineEvent] = deque()
        self._drops: dict[str, int] = {}

    def handle(self, event: PipelineEvent) -> None:
        if len(self.events) >= self.capacity:
            evicted = self.events.popleft()
            self._drops[evicted.kind] = self._drops.get(evicted.kind, 0) + 1
        self.events.append(event)

    def drops(self) -> dict[str, int]:
        """Events evicted so far, counted per kind (key-sorted)."""
        return {kind: self._drops[kind] for kind in sorted(self._drops)}

    def close(self) -> None:
        pass


class FileTransport:
    """Appends one JSON line per event, flushed eagerly.

    The per-event flush is what makes the sink tailable during the run
    and loss-free on a crash; it costs one small write syscall per
    event, which the event-overhead benchmark keeps honest.

    With ``max_bytes`` set the sink rotates size-wise: when the next
    line would push the current file past the cap, the file shifts to
    ``<path>.1`` (existing backups shift up, the oldest of ``backups``
    is deleted) and a fresh file opens at ``path`` — bounded disk for a
    long-lived run.  Every event rotated out of the *live* file is
    counted per kind in :meth:`drops` — the same accounting contract as
    the ring, stated against the file a reader actually tails; retained
    backups are a forensic courtesy on top, not part of the invariant.
    """

    name = "file"

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int | None = None,
        backups: int = 1,
    ) -> None:
        require(
            max_bytes is None or max_bytes > 0, "rotation max_bytes must be > 0"
        )
        require(backups >= 1, "rotation needs at least one backup slot")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = int(backups)
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._written = 0
        self._kind_counts: dict[str, int] = {}
        self._drops: dict[str, int] = {}

    def _backup_path(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index}")

    def _rotate(self) -> None:
        assert self._handle is not None
        self._handle.close()
        doomed = self._backup_path(self.backups)
        if doomed.exists():
            doomed.unlink()
        for index in range(self.backups - 1, 0, -1):
            source = self._backup_path(index)
            if source.exists():
                source.replace(self._backup_path(index + 1))
        self.path.replace(self._backup_path(1))
        # Rotation accounting is against the live file: everything that
        # just left it is a drop, whether or not a backup retains it.
        for kind, count in self._kind_counts.items():
            self._drops[kind] = self._drops.get(kind, 0) + count
        self._kind_counts = {}
        self._written = 0
        self.rotations += 1
        self._handle = self.path.open("w", encoding="utf-8")

    def handle(self, event: PipelineEvent) -> None:
        if self._handle is None:
            return
        line = event.to_json() + "\n"
        if (
            self.max_bytes is not None
            and self._written
            and self._written + len(line) > self.max_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._written += len(line)
        self._kind_counts[event.kind] = self._kind_counts.get(event.kind, 0) + 1

    def drops(self) -> dict[str, int]:
        """Events rotated out of the live file, counted per kind."""
        return {kind: self._drops[kind] for kind in sorted(self._drops)}

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class QueueTransport:
    """Puts each event's dict form on a (multiprocessing) queue.

    Any object with a ``put`` method works; in production it is a
    ``multiprocessing`` queue created by the process-pool executor, so
    worker-side events cross the process boundary as soon as they are
    emitted — a worker crash cannot lose what was already put.
    """

    name = "queue"

    def __init__(self, queue) -> None:
        self.queue = queue

    def handle(self, event: PipelineEvent) -> None:
        self.queue.put(event.as_dict())

    def close(self) -> None:
        pass


class EventBus:
    """Assigns sequence numbers and timestamps; fans out to transports.

    Emission is thread-safe (one lock around sequencing + dispatch), so
    thread-pool workers may emit directly on the coordinator's bus.
    ``t`` is seconds since the bus was created — a monotonic offset,
    never wall-clock, so stored logs replay deterministically.
    """

    recording = True

    def __init__(
        self,
        transports: Iterable = (),
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.transports = list(transports)
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._counts: dict[str, int] = {}
        self._last_t: float | None = None
        self._gaps = QuantileSketch()
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: object) -> PipelineEvent:
        """Sequence and deliver one event to every transport."""
        require(kind in _KNOWN_KINDS, f"unknown event kind {kind!r}")
        with self._lock:
            event = PipelineEvent(
                seq=self._seq, t=self._clock() - self._epoch, kind=kind, fields=fields
            )
            self._seq += 1
            self._counts[kind] = self._counts.get(kind, 0) + 1
            if self._last_t is not None:
                self._gaps.observe(max(0.0, event.t - self._last_t))
            self._last_t = event.t
            for transport in self.transports:
                transport.handle(event)
        return event

    def forward(self, payload: Mapping) -> PipelineEvent:
        """Re-emit an event received from a worker process.

        The event is re-sequenced onto this bus (worker-local sequence
        numbers are meaningless after the merge); kind and fields are
        preserved verbatim.
        """
        fields = payload.get("fields", {})
        return self.emit(str(payload["kind"]), **dict(fields))

    def summary(self) -> dict[str, int]:
        """Events emitted so far, counted per kind (key-sorted)."""
        with self._lock:
            return {kind: self._counts[kind] for kind in sorted(self._counts)}

    def interarrival(self) -> dict:
        """Exported sketch of gaps between consecutive emits (seconds)."""
        with self._lock:
            return self._gaps.as_dict()

    def drop_counts(self) -> dict[str, dict[str, int]]:
        """Per-transport drop accounting: ``{transport: {kind: n}}``.

        Only transports exposing a ``drops()`` method (the bounded
        ones) contribute; transports of the same ``name`` aggregate.
        """
        merged: dict[str, dict[str, int]] = {}
        for transport in self.transports:
            drops = getattr(transport, "drops", None)
            if drops is None:
                continue
            counts = drops()
            if not counts:
                continue
            bucket = merged.setdefault(getattr(transport, "name", "transport"), {})
            for kind, count in counts.items():
                bucket[kind] = bucket.get(kind, 0) + count
        return {
            name: {kind: kinds[kind] for kind in sorted(kinds)}
            for name, kinds in sorted(merged.items())
        }

    def flush_drops(self) -> dict[str, dict[str, int]]:
        """Emit one ``transport.drop`` accounting event per transport
        that dropped anything; returns the counts it announced.

        Call at run teardown, *before* reading :meth:`summary` for the
        manifest, so the accounting itself rides the stream.  The drop
        events may themselves evict ring entries — :meth:`drop_counts`
        stays authoritative; the emitted fields are the pre-flush view.
        """
        announced = self.drop_counts()
        for name, kinds in announced.items():
            self.emit(
                "transport.drop",
                transport=name,
                dropped=sum(kinds.values()),
                kinds=dict(kinds),
            )
        return announced

    def close(self) -> None:
        """Close every transport (flushes and releases file sinks)."""
        for transport in self.transports:
            transport.close()


class NullEventBus:
    """The disabled bus: emitting is free and delivers nowhere."""

    recording = False

    def emit(self, kind: str, **fields: object) -> None:
        return None

    def forward(self, payload: Mapping) -> None:
        return None

    def summary(self) -> dict[str, int]:
        return {}

    def interarrival(self) -> dict:
        return {}

    def drop_counts(self) -> dict[str, dict[str, int]]:
        return {}

    def flush_drops(self) -> dict[str, dict[str, int]]:
        return {}

    def close(self) -> None:
        pass


#: The process-wide default: the event stream off.
NULL_BUS = NullEventBus()

_active: EventBus | NullEventBus = NULL_BUS


def active_bus() -> EventBus | NullEventBus:
    """The bus instrumentation sites currently emit on."""
    return _active


def activate_bus(bus: EventBus | NullEventBus) -> EventBus | NullEventBus:
    """Install ``bus`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = bus
    return previous


@contextmanager
def use_bus(bus: EventBus | NullEventBus) -> Iterator[EventBus | NullEventBus]:
    """Activate ``bus`` for the duration of the block."""
    previous = activate_bus(bus)
    try:
        yield bus
    finally:
        activate_bus(previous)


def read_events(path: str | Path) -> list[PipelineEvent]:
    """Parse a stored JSON-lines event log (raises on malformed lines)."""
    return list(iter_events(path))


def iter_events(
    path: str | Path,
    *,
    follow: bool = False,
    poll_seconds: float = 0.2,
    stop: Callable[[], bool] | None = None,
) -> Iterator[PipelineEvent]:
    """Yield events from a log file, optionally following appends.

    Without ``follow`` this is a deterministic replay: the yielded
    events are a pure function of the file's contents.  With ``follow``
    the iterator polls for new complete lines until ``stop()`` returns
    true (or forever — the CLI wires ``stop`` to KeyboardInterrupt).
    Partial trailing lines (a writer mid-append) are never yielded.

    A followed file that is truncated or rotated out from under the
    reader (inode change, or size regressing below the read position —
    what a size-rotating :class:`FileTransport` does) is reopened from
    the start instead of silently stalling at a stale offset; any
    half-buffered line from the old incarnation is discarded.
    """
    path = Path(path)
    position = 0
    inode: int | None = None
    buffer = ""
    while True:
        if path.is_file():
            try:
                stat = path.stat()
            except OSError:
                stat = None
            if stat is not None:
                if inode is not None and (
                    stat.st_ino != inode or stat.st_size < position
                ):
                    position = 0
                    buffer = ""
                inode = stat.st_ino
            try:
                with path.open("r", encoding="utf-8") as handle:
                    handle.seek(position)
                    buffer += handle.read()
                    position = handle.tell()
            except OSError:
                # Rotated away between stat and open; retry next poll.
                pass
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                if line.strip():
                    yield PipelineEvent.from_dict(json.loads(line))
        if not follow or (stop is not None and stop()):
            return
        time.sleep(poll_seconds)


def parse_filters(specs: Sequence[str]) -> dict[str, str]:
    """``KEY=VALUE`` filter specs -> mapping (``--filter stage=epm``)."""
    filters: dict[str, str] = {}
    for spec in specs:
        require("=" in spec, f"filter {spec!r} is not KEY=VALUE")
        key, _eq, value = spec.partition("=")
        filters[key] = value
    return filters


def matches(event: PipelineEvent, filters: Mapping[str, str]) -> bool:
    """Whether an event satisfies every filter (AND semantics).

    ``kind`` matches the event kind (prefix match on a trailing ``*``,
    so ``kind=stage.*`` selects both start and finish); any other key
    compares against the string form of that event field.
    """
    for key, expected in filters.items():
        if key == "kind":
            if expected.endswith("*"):
                if not event.kind.startswith(expected[:-1]):
                    return False
            elif event.kind != expected:
                return False
        elif str(event.fields.get(key)) != expected:
            return False
    return True


class ProgressRenderer:
    """A transport turning the stream into live per-stage progress lines.

    Tracks the open stage stack, per-stage chunk/item completion
    against the planned totals (``chunk.plan``), and estimates the time
    remaining as *remaining chunks x median chunk latency* — the median
    comes from a :class:`~repro.obs.metrics.Histogram` of observed
    chunk seconds, so the ETA firms up as the run progresses.  Off by
    default; the CLI enables it with ``--progress``.
    """

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self._stack: list[str] = []
        self._chunk_seconds = Histogram(LATENCY_BUCKETS)
        self._planned_chunks = 0
        self._planned_items = 0
        self._done_chunks = 0
        self._done_items = 0

    @property
    def _stage(self) -> str:
        return self._stack[-1] if self._stack else "-"

    def _line(self, text: str) -> None:
        self.stream.write(f"[progress] {text}\n")
        self.stream.flush()

    def handle(self, event: PipelineEvent) -> None:
        kind, fields = event.kind, event.fields
        if kind == "run.start":
            self._line(f"run started {self._render_fields(fields)}")
        elif kind == "stage.start":
            self._stack.append(str(fields.get("stage", "?")))
        elif kind == "chunk.plan":
            self._planned_chunks = int(fields.get("chunks", 0))
            self._planned_items = int(fields.get("items", 0))
            self._done_chunks = 0
            self._done_items = 0
        elif kind == "chunk.finish":
            self._done_chunks += 1
            self._done_items += int(fields.get("items", 0))
            self._chunk_seconds.observe(float(fields.get("seconds", 0.0)))
            self._line(
                f"{self._stage}: chunks {self._done_chunks}/{self._planned_chunks}"
                f" items {self._done_items}/{self._planned_items}"
                f" eta {self._eta()}"
            )
        elif kind == "stage.finish":
            stage = str(fields.get("stage", "?"))
            if self._stack and self._stack[-1] == stage:
                self._stack.pop()
            self._line(f"{stage} finished in {float(fields.get('seconds', 0.0)):.3f}s")
        elif kind == "run.finish":
            self._line(f"run finished {self._render_fields(fields)}")

    def _eta(self) -> str:
        median = self._chunk_seconds.quantile(0.5)
        remaining = max(0, self._planned_chunks - self._done_chunks)
        if median is None:
            return "?"
        return f"{remaining * median:.1f}s"

    @staticmethod
    def _render_fields(fields: Mapping[str, object]) -> str:
        return " ".join(f"{key}={fields[key]}" for key in sorted(fields))

    def close(self) -> None:
        pass
