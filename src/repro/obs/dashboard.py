"""The terminal dashboard: window series as sparklines.

``repro obs dashboard`` turns a run's :class:`~repro.obs.windows.WindowReport`
into a compact terminal view — one sparkline row per window series
(attack volume, new samples/patterns, per-perspective cluster counts,
churn, cross-view agreement), the whole-run cross-view summary, and the
run's health findings when a manifest is on hand.  The static render is
a pure function of its payloads, so it doubles as the CI artifact
snapshot.

With ``--follow`` the dashboard rides the same machinery as
``repro obs tail``: it watches an event log for ``window.rollup``
events (one per window, emitted by the scenario layer as series are
folded) and redraws a frame per rollup, so a long run's landscape shape
builds up live in the terminal.
"""

from __future__ import annotations

from typing import IO, Callable, Mapping

from repro.obs.events import PipelineEvent, iter_events
from repro.obs.windows import WINDOW_SERIES
from repro.util.validation import require

#: Eight-level block ramp used for sparkline cells.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Widest series name (layout column for the render).
_NAME_WIDTH = max(len(name) for name in WINDOW_SERIES)


def sparkline(values: list[float]) -> str:
    """One block-character cell per value, scaled to the series range.

    A flat series renders as all-low cells (there is no shape to show);
    an empty one renders empty.
    """
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[int((value - lo) / span * top)] for value in values
    )


def _series_row(name: str, values: list[float]) -> str:
    last = values[-1] if values else 0.0
    hi = max(values) if values else 0.0
    return (
        f"  {name:<{_NAME_WIDTH}}  {sparkline(values):<{max(len(values), 1)}}"
        f"  last={last:g} max={hi:g}"
    )


def render_dashboard(windows: Mapping, health: Mapping | None = None) -> str:
    """The full static dashboard of a window report payload.

    ``windows`` is a :meth:`~repro.obs.windows.WindowReport.as_dict`
    payload; ``health`` is an optional
    :meth:`~repro.obs.health.HealthReport.as_dict` payload appended as
    a findings section.  Deterministic: sorted sections, no wall-clock.
    """
    require("series" in windows, "payload has no window series")
    series = windows["series"]
    lines = [
        "landscape dashboard"
        f" · fingerprint {str(windows.get('fingerprint', ''))[:16] or '-'}"
        f" · seed {windows.get('seed', '-')}"
        f" · {windows.get('n_windows', len(next(iter(series.values()), [])))}"
        f" windows x {windows.get('window_weeks', '?')}w",
        "",
    ]
    for name in WINDOW_SERIES:
        if name in series:
            lines.append(_series_row(name, [float(v) for v in series[name]]))
    for name in sorted(series):
        if name not in WINDOW_SERIES:
            lines.append(_series_row(name, [float(v) for v in series[name]]))
    crossview = windows.get("crossview", {})
    if crossview:
        lines.append("")
        lines.append(
            "  crossview: "
            + " ".join(f"{key}={crossview[key]}" for key in sorted(crossview))
        )
    if health is not None:
        summary = health.get("summary", {})
        lines.append("")
        lines.append(
            "  health: "
            + (
                " ".join(
                    f"{severity}={summary[severity]}"
                    for severity in sorted(summary)
                )
                or "clean"
            )
        )
        for finding in health.get("findings", []):
            where = (
                f" [window {finding['window']}]"
                if finding.get("window") is not None
                else ""
            )
            lines.append(
                f"    {str(finding['severity']).upper():<8} "
                f"{finding['rule']}{where} = {float(finding['value']):g}"
            )
    return "\n".join(lines) + "\n"


class DashboardAccumulator:
    """Folds ``window.rollup`` events back into a window-report payload.

    The scenario layer emits one ``window.rollup`` event per window with
    every series value as a field; feeding those events here rebuilds
    the ``series`` mapping incrementally, which is what lets ``--follow``
    redraw the dashboard as windows arrive without waiting for the
    ``.windows.json`` sidecar to exist.
    """

    def __init__(self) -> None:
        self.meta: dict = {}
        self.series: dict[str, list[float]] = {}
        self._windows_seen = 0

    def feed(self, event: PipelineEvent) -> bool:
        """Ingest one event; True when the frame should redraw."""
        if event.kind != "window.rollup":
            return False
        fields = dict(event.fields)
        for key in ("fingerprint", "seed", "window_weeks", "n_windows"):
            if key in fields:
                self.meta[key] = fields.pop(key)
        fields.pop("window", None)
        for name, value in fields.items():
            self.series.setdefault(str(name), []).append(float(value))
        self._windows_seen += 1
        return True

    def payload(self) -> dict:
        """The accumulated payload in window-report layout."""
        return {
            **self.meta,
            "n_windows": self._windows_seen,
            "series": {name: list(self.series[name]) for name in sorted(self.series)},
        }


def follow_dashboard(
    path,
    stream: IO[str],
    *,
    poll_seconds: float = 0.2,
    stop: Callable[[], bool] | None = None,
) -> int:
    """Tail ``path`` and redraw the dashboard per ``window.rollup``.

    Frames are separated by a form-feed-free blank line (terminal
    multiplexer friendly, artifact-file friendly).  Returns the number
    of frames drawn; like ``repro obs tail``, the CLI wires ``stop`` /
    KeyboardInterrupt for interactive exit.
    """
    accumulator = DashboardAccumulator()
    frames = 0
    for event in iter_events(path, follow=True, poll_seconds=poll_seconds, stop=stop):
        if accumulator.feed(event):
            frames += 1
            stream.write(render_dashboard(accumulator.payload()))
            stream.write("\n")
            stream.flush()
    return frames
