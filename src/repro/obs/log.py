"""Structured logging on top of stdlib :mod:`logging`.

All repro loggers live under the ``"repro"`` namespace
(:func:`get_logger`), so one :func:`configure_logging` call controls
the whole library without touching the root logger.  Two formatters:

* :class:`ConsoleFormatter` — terse human lines on a stream
  (``[info   ] repro.cli: scenario starting seed=2010 ...``);
* :class:`JsonLineFormatter` — one JSON object per line, structured
  fields preserved, for the ``--log-json PATH`` sink.

Structured fields travel the stdlib way, via ``extra``::

    log.info("scenario finished", extra={"events": 14687, "seconds": 12.3})

Both formatters pick every non-reserved record attribute up, so the
same call renders ``events=14687 seconds=12.3`` on the console and
``{"events": 14687, "seconds": 12.3, ...}`` in the JSON file.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: Root of the library's logger namespace.
LOGGER_NAME = "repro"

#: Marker attribute identifying handlers installed by configure_logging.
_MANAGED = "_repro_obs_managed"

#: Attributes every LogRecord carries (plus formatter-injected ones);
#: anything else on a record is a user-supplied structured field.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the library namespace (``repro`` or ``repro.<name>``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + ".") or name == LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def _structured_fields(record: logging.LogRecord) -> dict[str, object]:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class ConsoleFormatter(logging.Formatter):
    """Human-oriented one-liners with trailing ``key=value`` fields."""

    def format(self, record: logging.LogRecord) -> str:
        line = f"[{record.levelname.lower():<7}] {record.name}: {record.getMessage()}"
        fields = _structured_fields(record)
        if fields:
            line += "  " + " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class JsonLineFormatter(logging.Formatter):
    """One key-sorted JSON object per record, structured fields inline."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in _structured_fields(record).items():
            if not isinstance(value, (str, int, float, bool, type(None))):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def configure_logging(
    level: str | int = "info",
    json_path: str | None = None,
    *,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Configure the library logger once; reconfiguring replaces handlers.

    ``level`` is a name (``"debug"``..``"error"``) or a stdlib level
    int.  Console lines go to ``stream`` (default ``sys.stderr``);
    ``json_path``, if given, additionally appends one JSON object per
    record to that file.  Only handlers this function installed are
    replaced, so embedders' own handlers survive.  Returns the
    configured ``repro`` logger.
    """
    if isinstance(level, str):
        if level.lower() not in _LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        level = _LEVELS[level.lower()]
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _MANAGED, False):
            logger.removeHandler(handler)
            handler.close()
    console = logging.StreamHandler(stream if stream is not None else sys.stderr)
    console.setFormatter(ConsoleFormatter())
    setattr(console, _MANAGED, True)
    logger.addHandler(console)
    if json_path:
        json_handler = logging.FileHandler(json_path, encoding="utf-8")
        json_handler.setFormatter(JsonLineFormatter())
        setattr(json_handler, _MANAGED, True)
        logger.addHandler(json_handler)
    return logger
