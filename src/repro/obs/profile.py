"""Span profiling: per-span resource probes and span-tree exporters.

Two halves, both operating on the :mod:`repro.obs.trace` layer:

* :class:`SpanProbe` is the opt-in per-span resource sampler a
  profiling :class:`~repro.obs.trace.Tracer` attaches around every
  span: CPU time (``time.process_time``), peak RSS
  (``resource.getrusage``, unavailable on non-Unix platforms and then
  silently omitted) and cumulative GC collections.  The results land as
  ordinary span attributes (:data:`PROFILE_ATTRS`), so they ride the
  manifest's span tree with no schema change.

* The exporters turn an *exported* span tree (the plain-dict form of
  :meth:`TraceSpan.export`, i.e. exactly what a stored run manifest
  carries) into Chrome trace-event JSON (:func:`chrome_trace`, loadable
  in ``chrome://tracing`` / Perfetto) or a self-contained
  flamegraph-style text view (:func:`flame_view`).  Operating on the
  dict form means any stored manifest — including one produced by an
  older schema without span ``start`` offsets — can be exported; spans
  without a recorded start are laid out sequentially inside their
  parent.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import Iterator, Mapping

try:  # pragma: no cover - resource is always present on Linux CI
    import resource
except ImportError:  # pragma: no cover - non-Unix platforms
    resource = None  # type: ignore[assignment]

#: Attribute names a profiling tracer attaches to every span.
PROFILE_ATTRS = ("cpu_seconds", "max_rss_kb", "gc_collections")


def _gc_collections() -> int:
    """Total completed GC collections across all generations."""
    return sum(stat["collections"] for stat in gc.get_stats())


def _max_rss_kb() -> int | None:
    """Process peak RSS in KiB, or ``None`` where unavailable."""
    if resource is None:
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class SpanProbe:
    """Samples CPU/GC at span open and attributes the deltas at close.

    Peak RSS is a process-level high-water mark, so per span it reports
    the watermark *at span close* — monotone over the run, which is
    exactly what makes the first RSS jump attributable to a stage.
    """

    __slots__ = ()

    def begin(self) -> tuple[float, int]:
        """Sample counters at span open; returns an opaque token."""
        return (time.process_time(), _gc_collections())

    def end(self, token: tuple[float, int]) -> dict[str, object]:
        """Attribute deltas since ``token``; keys from :data:`PROFILE_ATTRS`."""
        cpu0, gc0 = token
        attrs: dict[str, object] = {
            "cpu_seconds": round(time.process_time() - cpu0, 6),
            "gc_collections": _gc_collections() - gc0,
        }
        rss = _max_rss_kb()
        if rss is not None:
            attrs["max_rss_kb"] = rss
        return attrs


def _as_tree(tree: object) -> Mapping:
    """Accept an exported dict tree or a live ``TraceSpan`` duck-typed."""
    if isinstance(tree, Mapping):
        return tree
    export = getattr(tree, "export", None)
    if callable(export):
        return export()
    raise TypeError(f"not a span tree: {tree!r}")


def _walk_with_starts(
    node: Mapping, default_start: float
) -> Iterator[tuple[Mapping, float]]:
    """Yield ``(span, start_seconds)`` pre-order, synthesizing starts.

    A span without a recorded ``start`` opens where its predecessor
    sibling ended (sequential layout), which is the truth for the
    serial pipeline and a readable approximation otherwise.
    """
    start = float(node.get("start", default_start))
    yield node, start
    cursor = start
    for child in node.get("children", ()):
        child_start = float(child.get("start", cursor))
        yield from _walk_with_starts(child, child_start)
        cursor = child_start + float(child.get("seconds", 0.0))


def chrome_trace(tree: object, *, pid: int = 1, tid: int = 1) -> dict:
    """Chrome trace-event JSON of a span tree (one complete event per span).

    The output loads directly in ``chrome://tracing`` and Perfetto:
    every span becomes one ``"ph": "X"`` (complete) event with
    microsecond ``ts``/``dur`` and its attributes under ``args``.
    """
    tree = _as_tree(tree)
    events = []
    for span, start in _walk_with_starts(tree, 0.0):
        event: dict = {
            "name": str(span.get("name", "?")),
            "ph": "X",
            "ts": max(0, round(start * 1e6)),
            "dur": max(0, round(float(span.get("seconds", 0.0)) * 1e6)),
            "pid": pid,
            "tid": tid,
        }
        attributes = span.get("attributes")
        if attributes:
            event["args"] = dict(attributes)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tree: object, path: str | Path) -> Path:
    """Persist :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(tree), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def flame_view(tree: object, *, width: int = 40) -> str:
    """Flamegraph-style text rendering of a span tree.

    Each span gets one line: an indented name, a bar proportional to
    its share of the root's duration, the duration, and — when the run
    was profiled — its CPU seconds and peak RSS.
    """
    tree = _as_tree(tree)
    root_seconds = float(tree.get("seconds", 0.0)) or 1.0
    lines = []
    for depth, span in _walk_dicts(tree):
        seconds = float(span.get("seconds", 0.0))
        share = min(1.0, seconds / root_seconds)
        bar = "▇" * max(1, round(share * width)) if seconds else ""
        label = "  " * depth + str(span.get("name", "?"))
        line = f"{label:<28} {bar:<{width}} {seconds:9.3f} s {share:6.1%}"
        attributes = span.get("attributes", {})
        extras = []
        if "cpu_seconds" in attributes:
            extras.append(f"cpu={attributes['cpu_seconds']:.3f}s")
        if "max_rss_kb" in attributes:
            extras.append(f"rss={attributes['max_rss_kb']}KiB")
        if "gc_collections" in attributes:
            extras.append(f"gc={attributes['gc_collections']}")
        if extras:
            line += "  " + " ".join(extras)
        lines.append(line.rstrip())
    return "\n".join(lines)


def _walk_dicts(node: Mapping, depth: int = 0) -> Iterator[tuple[int, Mapping]]:
    yield depth, node
    for child in node.get("children", ()):
        yield from _walk_dicts(child, depth + 1)
