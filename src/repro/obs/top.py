"""``repro obs top``: a live resource/throughput view of one run.

Where ``repro obs dashboard`` shows the *landscape* (window series),
``top`` shows the *machinery*: event throughput, chunk latencies and
the per-worker resource watermarks riding on ``chunk.finish`` events,
plus the drop accounting of any bounded transports.  Everything is
derived from the event stream alone — no manifest required — so it
works mid-run on a partially written log.

The static render is a pure function of the accumulated state (no
wall-clock reads; rates come from the events' own monotonic stamps), so
``repro obs top events.jsonl --out top.txt`` doubles as a deterministic
CI artifact.  With ``--follow`` it rides :func:`iter_events`'s tail
mode — which survives log rotation — and redraws a frame per
throughput-relevant event.
"""

from __future__ import annotations

from collections import deque
from typing import IO, Callable, Mapping

from repro.obs.dashboard import sparkline
from repro.obs.events import PipelineEvent, iter_events

#: Trailing samples kept per sparkline series (bounds accumulator memory).
TOP_WINDOW = 48

#: Event kinds that trigger a redraw in follow mode.  High-frequency
#: bookkeeping kinds (cache.*) update the counters silently; redrawing
#: only on work-completion events keeps frame volume proportional to
#: chunks, not to cache traffic.
REDRAW_KINDS = frozenset(
    {
        "chunk.finish",
        "stage.finish",
        "window.rollup",
        "worker.failure",
        "transport.drop",
        "run.finish",
    }
)


class TopAccumulator:
    """Folds a run's event stream into the ``top`` view's state.

    Memory is O(:data:`TOP_WINDOW`): counters plus bounded deques of the
    most recent chunk latencies, resident-set watermarks and event
    inter-arrival gaps.  Feeding the same events always produces the
    same :meth:`snapshot` (insertion-order independent sections are
    sorted at render time).
    """

    def __init__(self, window: int = TOP_WINDOW) -> None:
        self.meta: dict = {}
        self.kind_counts: dict[str, int] = {}
        self.n_events = 0
        self.t_first: float | None = None
        self.t_last: float | None = None
        self.chunk_seconds: deque[float] = deque(maxlen=window)
        self.rss_kb: deque[float] = deque(maxlen=window)
        self.gaps: deque[float] = deque(maxlen=window)
        self.peak_rss_kb = 0.0
        self.items_done = 0
        self.current_stage: str | None = None
        self.stages_done = 0
        self.failures = 0
        self.drops: dict[str, dict[str, int]] = {}
        self.finished = False

    def feed(self, event: PipelineEvent) -> bool:
        """Ingest one event; True when a follow frame should redraw."""
        self.n_events += 1
        self.kind_counts[event.kind] = self.kind_counts.get(event.kind, 0) + 1
        t = float(event.t)
        if self.t_first is None:
            self.t_first = t
        elif self.t_last is not None and t >= self.t_last:
            self.gaps.append(t - self.t_last)
        self.t_last = t
        fields = event.fields
        if event.kind == "run.start":
            for key in ("seed", "weeks", "scale", "executor"):
                if key in fields:
                    self.meta[key] = fields[key]
        elif event.kind == "chunk.finish":
            if "seconds" in fields:
                self.chunk_seconds.append(float(fields["seconds"]))
            if fields.get("rss_kb") is not None:
                rss = float(fields["rss_kb"])
                self.rss_kb.append(rss)
                self.peak_rss_kb = max(self.peak_rss_kb, rss)
            self.items_done += int(fields.get("items", 0))
        elif event.kind == "stage.start":
            self.current_stage = str(fields.get("stage", "?"))
        elif event.kind == "stage.finish":
            self.stages_done += 1
            if self.current_stage == str(fields.get("stage")):
                self.current_stage = None
        elif event.kind == "worker.failure":
            self.failures += 1
        elif event.kind == "transport.drop":
            transport = str(fields.get("transport", "?"))
            sink = self.drops.setdefault(transport, {})
            for kind, count in dict(fields.get("kinds", {})).items():
                sink[str(kind)] = sink.get(str(kind), 0) + int(count)
        elif event.kind == "run.finish":
            self.finished = True
        return event.kind in REDRAW_KINDS

    def rate(self) -> float:
        """Whole-stream event throughput (events per second)."""
        if self.t_first is None or self.t_last is None:
            return 0.0
        elapsed = self.t_last - self.t_first
        if elapsed <= 0:
            return 0.0
        return (self.n_events - 1) / elapsed

    def snapshot(self) -> dict:
        """Plain-dict form of the accumulated state (render input)."""
        return {
            "meta": dict(self.meta),
            "n_events": self.n_events,
            "rate": self.rate(),
            "gaps": list(self.gaps),
            "chunk_seconds": list(self.chunk_seconds),
            "rss_kb": list(self.rss_kb),
            "peak_rss_kb": self.peak_rss_kb,
            "items_done": self.items_done,
            "current_stage": self.current_stage,
            "stages_done": self.stages_done,
            "failures": self.failures,
            "drops": {
                transport: dict(sorted(kinds.items()))
                for transport, kinds in sorted(self.drops.items())
            },
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "finished": self.finished,
        }


def _number(value: float) -> str:
    return f"{float(value):g}"


def render_top(state: Mapping) -> str:
    """The ``top`` frame for one accumulator snapshot.

    Deterministic: a pure function of ``state`` — sorted sections, no
    wall-clock — so a frame rendered from a finished log is a stable CI
    artifact.
    """
    meta = dict(state.get("meta", {}))
    status = "finished" if state.get("finished") else (
        f"stage {state['current_stage']}"
        if state.get("current_stage")
        else "running"
    )
    lines = [
        "repro top"
        f" · seed {meta.get('seed', '-')}"
        f" · {meta.get('weeks', '?')}w x{meta.get('scale', '?')}"
        f" · executor {meta.get('executor', '-')}"
        f" · {status}",
        "",
        f"  events   n={int(state.get('n_events', 0))}"
        f" rate={_number(state.get('rate', 0.0))}/s"
        f"  gap {sparkline([float(v) for v in state.get('gaps', [])])}",
        f"  chunks   n={len(state.get('chunk_seconds', []))}"
        f" items={int(state.get('items_done', 0))}"
        f"  sec {sparkline([float(v) for v in state.get('chunk_seconds', [])])}",
    ]
    rss = [float(v) for v in state.get("rss_kb", [])]
    if rss:
        lines.append(
            f"  rss_kb   last={_number(rss[-1])}"
            f" peak={_number(state.get('peak_rss_kb', 0.0))}"
            f"  rss {sparkline(rss)}"
        )
    lines.append(
        f"  stages   done={int(state.get('stages_done', 0))}"
        f" failures={int(state.get('failures', 0))}"
    )
    drops = dict(state.get("drops", {}))
    if drops:
        for transport in sorted(drops):
            kinds = drops[transport]
            total = sum(int(v) for v in kinds.values())
            detail = " ".join(f"{k}={int(kinds[k])}" for k in sorted(kinds))
            lines.append(f"  drops    {transport}={total} ({detail})")
    else:
        lines.append("  drops    none")
    counts = dict(state.get("kind_counts", {}))
    if counts:
        lines.append(
            "  kinds    "
            + " ".join(f"{kind}={int(counts[kind])}" for kind in sorted(counts))
        )
    return "\n".join(lines) + "\n"


def top_from_events(events) -> str:
    """Static render: fold a whole event iterable, return one frame."""
    accumulator = TopAccumulator()
    for event in events:
        accumulator.feed(event)
    return render_top(accumulator.snapshot())


def follow_top(
    path,
    stream: IO[str],
    *,
    poll_seconds: float = 0.2,
    stop: Callable[[], bool] | None = None,
) -> int:
    """Tail ``path`` and redraw the ``top`` frame per work event.

    Frames are separated by a blank line (artifact-file friendly) and
    the loop inherits :func:`iter_events`'s rotation/truncation
    handling, so a size-rotated log keeps feeding frames.  Returns the
    number of frames drawn.
    """
    accumulator = TopAccumulator()
    frames = 0
    for event in iter_events(path, follow=True, poll_seconds=poll_seconds, stop=stop):
        if accumulator.feed(event):
            frames += 1
            stream.write(render_top(accumulator.snapshot()))
            stream.write("\n")
            stream.flush()
    return frames
