"""The declarative SLO / health-rule engine over run telemetry.

A :class:`HealthRule` names one invariant the landscape pipeline should
uphold — "no worker ever failed", "the cross-view agreement never drops
below 0.25", "the per-window event rate never jumps more than four
trailing standard deviations" — and :func:`evaluate_health` checks a
rule set against a run's manifest payload plus (when available) its
:class:`~repro.obs.windows.WindowReport` series.  The result is a
severity-ranked, deterministic :class:`HealthReport`: findings are a
pure function of the evaluated payloads (never of wall-clock state), so
serial/thread/process executions of one scenario produce byte-identical
reports, digest-checked in the determinism tests.

Three rule kinds cover the useful space:

* ``max`` / ``min`` — static SLO thresholds.  Against a metric target
  they yield at most one finding; against a window series they yield
  one finding per offending window.
* ``zscore`` — anomaly detection over a window series: each point is
  scored against the exponentially weighted mean/variance (EWMA) of the
  points before it, so a spike is flagged relative to the run's own
  trailing behaviour rather than a fixed bound.

Targets are addressed with a small URI-ish syntax shared with
``repro obs history``: ``metric:<key>`` resolves through
:func:`repro.obs.diff.metric_value` (exact snapshot keys, bare names
summing labels, ``stage:<span>``, histogram quantiles), ``series:<name>``
reads a window series, and ``golden:deviations`` counts the manifest's
self-reported golden-headline deviations.

The CLI front-end is ``repro obs health`` (see :mod:`repro.cli`), which
CI runs as a gate: fail when a run carries findings at or above a
severity that its baseline run did not.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.util.canonical import canonical_digest
from repro.util.validation import require

#: Health-report schema version; bump on incompatible layout changes.
HEALTH_SCHEMA = 1

#: Severities in ascending order of alarm.
SEVERITIES = ("info", "warning", "critical")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Rule kinds the engine evaluates.
RULE_KINDS = ("max", "min", "zscore")

#: EWMA smoothing factor for ``zscore`` rules: ~the last five windows
#: dominate the trailing estimate.
EWMA_ALPHA = 0.3

#: ``zscore`` rules skip the first windows: a trailing estimate built
#: from fewer points than this flags nothing (cold-start noise).
MIN_HISTORY = 3


@dataclass(frozen=True)
class HealthRule:
    """One declarative invariant over a run's telemetry."""

    name: str
    severity: str
    #: ``metric:<key>``, ``series:<name>`` or ``golden:deviations``.
    target: str
    kind: str
    threshold: float
    #: Human framing of why the rule exists (rendered with findings).
    detail: str = ""

    def __post_init__(self) -> None:
        require(self.severity in SEVERITIES, f"unknown severity {self.severity!r}")
        require(self.kind in RULE_KINDS, f"unknown rule kind {self.kind!r}")
        require(
            self.target.partition(":")[0] in ("metric", "series", "golden"),
            f"unknown target scheme in {self.target!r}",
        )
        if self.kind == "zscore":
            require(
                self.target.startswith("series:"),
                "zscore rules need a window series target",
            )


@dataclass(frozen=True)
class HealthFinding:
    """One rule violation: what fired, where, by how much."""

    rule: str
    severity: str
    target: str
    value: float
    threshold: float
    detail: str
    #: Window index for series findings, ``None`` for whole-run ones.
    window: int | None = None

    def key(self) -> tuple[str, str, int | None]:
        """Identity for baseline comparison (value magnitudes ignored)."""
        return (self.rule, self.target, self.window)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "target": self.target,
            "value": round(float(self.value), 9),
            "threshold": round(float(self.threshold), 9),
            "detail": self.detail,
            "window": self.window,
        }

    def render(self) -> str:
        where = f" [window {self.window}]" if self.window is not None else ""
        line = (
            f"{self.severity.upper():<8} {self.rule}: {self.target}{where} "
            f"= {self.value:g} (threshold {self.threshold:g})"
        )
        return f"{line} — {self.detail}" if self.detail else line


@dataclass
class HealthReport:
    """Severity-ranked findings of one rule-set evaluation."""

    findings: list[HealthFinding] = field(default_factory=list)
    rules_evaluated: int = 0
    schema: int = HEALTH_SCHEMA

    def summary(self) -> dict[str, int]:
        """Finding counts per severity — the manifest's ``health_summary``."""
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst(self) -> str | None:
        """Highest severity present, ``None`` on a clean report."""
        if not self.findings:
            return None
        return self.findings[0].severity

    def at_or_above(self, severity: str) -> list[HealthFinding]:
        """Findings at or above ``severity``."""
        require(severity in SEVERITIES, f"unknown severity {severity!r}")
        floor = _SEVERITY_RANK[severity]
        return [f for f in self.findings if _SEVERITY_RANK[f.severity] >= floor]

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "rules_evaluated": self.rules_evaluated,
            "summary": self.summary(),
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """Canonical content address (determinism-checked in tests)."""
        return canonical_digest(self.as_dict())

    def render(self) -> str:
        """Human-readable report, most severe first."""
        counts = self.summary()
        head = ", ".join(
            f"{counts[severity]} {severity}"
            for severity in reversed(SEVERITIES)
            if counts[severity]
        )
        lines = [
            f"health: {len(self.findings)} finding(s) "
            f"({head or 'clean'}) from {self.rules_evaluated} rule(s)"
        ]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HealthReport":
        require(
            payload.get("schema") == HEALTH_SCHEMA,
            f"unsupported health report schema {payload.get('schema')!r}",
        )
        findings = [
            HealthFinding(
                rule=str(raw["rule"]),
                severity=str(raw["severity"]),
                target=str(raw["target"]),
                value=float(raw["value"]),
                threshold=float(raw["threshold"]),
                detail=str(raw.get("detail", "")),
                window=None if raw.get("window") is None else int(raw["window"]),
            )
            for raw in payload.get("findings", [])
        ]
        return cls(
            findings=findings,
            rules_evaluated=int(payload.get("rules_evaluated", 0)),
        )


#: The shipped rule set.  Deliberately conservative: every rule reads
#: *deterministic* telemetry (no wall-clock metrics), so the in-run
#: health report stays byte-identical across executor backends.
#: Mirrored in ``docs/ARCHITECTURE.md``'s health-rule table.
DEFAULT_RULES: tuple[HealthRule, ...] = (
    HealthRule(
        name="workers-healthy",
        severity="critical",
        target="metric:executor.worker_failures",
        kind="max",
        threshold=0,
        detail="a parallel worker crashed and its chunk was re-run",
    ),
    HealthRule(
        name="samples-collected",
        severity="critical",
        target="metric:honeypot.samples_collected",
        kind="min",
        threshold=1,
        detail="the observation stage collected no binaries at all",
    ),
    HealthRule(
        name="bclusters-exist",
        severity="critical",
        target="metric:lsh.clusters",
        kind="min",
        threshold=1,
        detail="behavioural clustering produced no clusters",
    ),
    HealthRule(
        name="lsh-guard-quiet",
        severity="warning",
        target="metric:lsh.buckets_skipped",
        kind="max",
        threshold=0,
        detail="the LSH bucket-size guard dropped candidate pairs",
    ),
    HealthRule(
        name="golden-headline",
        severity="warning",
        target="golden:deviations",
        kind="max",
        threshold=0,
        detail="the run deviates from the paper's golden headline",
    ),
    HealthRule(
        name="crossview-agreement-floor",
        severity="warning",
        target="series:agreement",
        kind="min",
        threshold=0.25,
        detail="static and behavioural views disagree on this window "
        "(poisoning or environment sensitivity — see PAPERS.md)",
    ),
    HealthRule(
        name="event-rate-anomaly",
        severity="warning",
        target="series:events",
        kind="zscore",
        threshold=4.0,
        detail="per-window attack volume jumped against its own trail",
    ),
    HealthRule(
        name="bcluster-churn-anomaly",
        severity="info",
        target="series:b_churn",
        kind="zscore",
        threshold=4.0,
        detail="behavioural cluster turnover spiked in this window",
    ),
)


def _resolve_metric(manifest: Mapping, key: str) -> float | None:
    # Deferred import: diff pulls the run store in, which health-only
    # callers (the in-run evaluation) never need.
    from repro.obs.diff import metric_value

    return metric_value(manifest, key)


def _series(windows: Mapping | None, name: str) -> list[float] | None:
    if windows is None:
        return None
    values = windows.get("series", {}).get(name)
    if values is None:
        return None
    return [float(v) for v in values]


def _violates(kind: str, value: float, threshold: float) -> bool:
    if kind == "max":
        return value > threshold
    return value < threshold  # "min"


def _zscore_findings(
    rule: HealthRule, values: Sequence[float]
) -> list[HealthFinding]:
    """EWMA-based anomaly scan: flag points far from their own trail.

    Mean and variance are exponentially weighted with
    :data:`EWMA_ALPHA`; each point is scored against the estimate built
    from the points *before* it, so a spike does not mask itself.  The
    arithmetic is plain float math on deterministic series — identical
    on every backend.
    """
    findings: list[HealthFinding] = []
    mean = 0.0
    var = 0.0
    for index, value in enumerate(values):
        if index >= MIN_HISTORY and var > 0:
            z = abs(value - mean) / math.sqrt(var)
            if z > rule.threshold:
                findings.append(
                    HealthFinding(
                        rule=rule.name,
                        severity=rule.severity,
                        target=rule.target,
                        value=round(z, 6),
                        threshold=rule.threshold,
                        detail=rule.detail,
                        window=index,
                    )
                )
        if index == 0:
            mean = value
            var = 0.0
        else:
            delta = value - mean
            mean += EWMA_ALPHA * delta
            var = (1 - EWMA_ALPHA) * (var + EWMA_ALPHA * delta * delta)
    return findings


def evaluate_health(
    manifest: Mapping,
    windows: Mapping | None = None,
    *,
    rules: Sequence[HealthRule] = DEFAULT_RULES,
) -> HealthReport:
    """Check every rule; returns the severity-ranked report.

    ``manifest`` is a run-manifest payload (or any mapping with
    ``metrics`` / ``golden_deviations`` sections); ``windows`` is the
    matching :meth:`~repro.obs.windows.WindowReport.as_dict` payload
    when one exists.  Rules whose target is absent (no window report
    stored, a metric the run never emitted) are skipped, not violated —
    absence of telemetry is not an outage.
    """
    findings: list[HealthFinding] = []
    for rule in rules:
        scheme, _colon, key = rule.target.partition(":")
        if rule.kind == "zscore":
            values = _series(windows, key)
            if values is not None:
                findings.extend(_zscore_findings(rule, values))
            continue
        if scheme == "series":
            values = _series(windows, key)
            if values is None:
                continue
            for window, value in enumerate(values):
                if _violates(rule.kind, value, rule.threshold):
                    findings.append(
                        HealthFinding(
                            rule=rule.name,
                            severity=rule.severity,
                            target=rule.target,
                            value=round(value, 6),
                            threshold=rule.threshold,
                            detail=rule.detail,
                            window=window,
                        )
                    )
            continue
        if scheme == "golden":
            value: float | None = float(len(manifest.get("golden_deviations", [])))
        else:
            value = _resolve_metric(manifest, key)
        if value is None:
            continue
        if _violates(rule.kind, value, rule.threshold):
            findings.append(
                HealthFinding(
                    rule=rule.name,
                    severity=rule.severity,
                    target=rule.target,
                    value=round(value, 6),
                    threshold=rule.threshold,
                    detail=rule.detail,
                )
            )
    findings.sort(
        key=lambda f: (
            -_SEVERITY_RANK[f.severity],
            f.rule,
            f.window if f.window is not None else -1,
        )
    )
    return HealthReport(findings=findings, rules_evaluated=len(rules))


def new_findings(
    report: HealthReport, baseline: HealthReport | None
) -> list[HealthFinding]:
    """Findings in ``report`` whose identity is absent from ``baseline``.

    Identity is :meth:`HealthFinding.key` — rule, target and window,
    not the measured value — so a pre-existing warning drifting in
    magnitude does not re-fire a gate, while the same rule tripping on
    a *new* window does.
    """
    if baseline is None:
        return list(report.findings)
    known = {finding.key() for finding in baseline.findings}
    return [f for f in report.findings if f.key() not in known]
