"""Cross-run comparison and longitudinal drift detection.

:func:`diff_manifests` compares two stored run manifests along the
three axes a refactor can regress on:

* **artifacts** — the digest block, plus a walk over both span trees
  (in completion order, i.e. post-order) comparing the per-stage
  ``output_digest`` attributes to name the *first* stage whose output
  diverged — "the bug is upstream of epm" instead of "something
  changed";
* **metrics** — counter/gauge deltas between the two snapshots
  (histograms hold wall-clock latencies and are skipped by design);
* **timings** — per-stage wall-time ratios against a configurable
  tolerance band.  Timing regressions never fail a diff by default
  (machines differ); callers opt in via ``fail_on_timing``.  Stages
  whose cache disposition differs between the runs (one replayed from
  the stage store, the other computed — schema >= 4 manifests) are
  annotated but never flagged: replay milliseconds are not comparable
  to compute seconds.

A diff also reports *new* golden-headline deviations: deviations
present in run B but not in run A.  Comparing against a committed
reference manifest therefore fails exactly when a change moved the
numbers, not merely because the reference was produced at reduced
scale (where both sides deviate identically from the full-scale
golden values).

:func:`render_history` is the time-series view over a
:class:`~repro.obs.history.RunStore`: one line per stored run for a
chosen metric, with drift flags for golden deviations and for values
outside the tolerance band around the trailing median.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.obs.history import RunStore
from repro.obs.manifest import RunManifest
from repro.obs.metrics import base_name, quantile_from_payload
from repro.obs.sketch import sketch_quantile_from_payload

#: Stage wall-time ratio above which a timing delta counts as a regression.
DEFAULT_TIMING_TOLERANCE = 1.5

#: Absolute floor (seconds) below which timing deltas are noise, never
#: regressions — sub-50ms stages jitter far beyond any tolerance band.
TIMING_NOISE_FLOOR = 0.05

#: Event kinds whose order and fields are pure functions of the
#: ``(seed, config)`` pair — the comparable skeleton of an event log.
#: Cache and failure events depend on execution state (a warm cache, a
#: crashed worker) and are excluded from cross-run comparison.
SEMANTIC_EVENT_KINDS = frozenset(
    {
        "run.start",
        "stage.start",
        "stage.finish",
        "chunk.plan",
        "chunk.finish",
        "cluster.milestone",
        "golden.deviation",
        "window.rollup",
        "health.finding",
        "health.summary",
        "run.finish",
    }
)

#: Event fields that legitimately differ between two runs of the same
#: configuration (wall times, backend/worker identity) — stripped
#: before comparing.
VOLATILE_EVENT_FIELDS = frozenset(
    {"seconds", "backend", "executor", "jobs", "rss_kb"}
)


def _payload(manifest: RunManifest | Mapping) -> dict:
    if isinstance(manifest, RunManifest):
        return manifest.as_dict()
    return dict(manifest)


@dataclass(frozen=True)
class TimingDelta:
    """One stage's wall time in both runs.

    ``cache_a``/``cache_b`` carry the stage's cache disposition
    (``hit``/``miss``/``off``, schema >= 4) in each run when recorded.
    A replayed stage loads a pickle in milliseconds while a computed
    one runs for seconds, so a timing comparison across different
    dispositions is meaningless — such deltas are never flagged as
    regressions, only annotated.
    """

    stage: str
    seconds_a: float
    seconds_b: float
    regression: bool
    cache_a: str | None = None
    cache_b: str | None = None

    @property
    def ratio(self) -> float:
        return self.seconds_b / self.seconds_a if self.seconds_a else float("inf")

    @property
    def comparable(self) -> bool:
        """Whether both runs built this stage the same way."""
        return self.cache_a == self.cache_b


@dataclass
class ManifestDiff:
    """Everything that differs between two run manifests."""

    fingerprint_a: str
    fingerprint_b: str
    digest_divergence: dict[str, tuple[str, str]] = field(default_factory=dict)
    first_diverging_stage: str | None = None
    #: First diverging semantic event, when both runs stored event logs.
    first_diverging_event: str | None = None
    metric_deltas: dict[str, tuple[float, float]] = field(default_factory=dict)
    timing_deltas: list[TimingDelta] = field(default_factory=list)
    new_golden_deviations: list[str] = field(default_factory=list)
    #: Per-severity health-summary counts that changed (schema >= 5).
    health_deltas: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def same_config(self) -> bool:
        return self.fingerprint_a == self.fingerprint_b

    @property
    def timing_regressions(self) -> list[TimingDelta]:
        return [delta for delta in self.timing_deltas if delta.regression]

    def failed(self, *, fail_on_timing: bool = False) -> bool:
        """Whether this diff should fail a regression gate."""
        if self.digest_divergence or self.new_golden_deviations:
            return True
        return fail_on_timing and bool(self.timing_regressions)

    def render(self) -> str:
        """Human-readable report, stable ordering."""
        lines: list[str] = []
        if not self.same_config:
            lines.append(
                "config fingerprints differ "
                f"({self.fingerprint_a[:12]}.. vs {self.fingerprint_b[:12]}..): "
                "comparing across configurations"
            )
        if self.digest_divergence:
            lines.append("artifact digests DIVERGED:")
            for artifact, (a, b) in sorted(self.digest_divergence.items()):
                lines.append(f"  {artifact}: {a[:12]}.. -> {b[:12]}..")
            if self.first_diverging_stage is not None:
                lines.append(
                    f"  first diverging stage: {self.first_diverging_stage}"
                )
            if self.first_diverging_event is not None:
                lines.append(
                    f"  first diverging event: {self.first_diverging_event}"
                )
        else:
            lines.append("artifact digests: identical")
        if self.new_golden_deviations:
            lines.append("NEW golden-headline deviations:")
            lines.extend(f"  {deviation}" for deviation in self.new_golden_deviations)
        if self.health_deltas:
            lines.append("health summary changed:")
            for severity, (a, b) in sorted(self.health_deltas.items()):
                lines.append(f"  {severity}: {a} -> {b}")
        if self.metric_deltas:
            lines.append("metric deltas (counters/gauges):")
            for key, (a, b) in sorted(self.metric_deltas.items()):
                lines.append(f"  {key}: {a:g} -> {b:g}")
        else:
            lines.append("metrics: counters/gauges identical")
        if self.timing_deltas:
            lines.append("stage timings:")
            for delta in self.timing_deltas:
                flag = "  REGRESSION" if delta.regression else ""
                if not delta.comparable:
                    flag = (
                        f"  [cache {delta.cache_a or '?'} -> "
                        f"{delta.cache_b or '?'}: not compared]"
                    )
                lines.append(
                    f"  {delta.stage:<12} {delta.seconds_a:8.3f}s -> "
                    f"{delta.seconds_b:8.3f}s ({delta.ratio:5.2f}x){flag}"
                )
        return "\n".join(lines)


def _walk_postorder(span: Mapping) -> Iterator[Mapping]:
    for child in span.get("children", ()):
        yield from _walk_postorder(child)
    yield span


def _span_digests(tree: Mapping) -> list[tuple[str, str]]:
    """``(name, output_digest)`` pairs in completion (post-) order."""
    if not tree:
        return []
    return [
        (str(span.get("name", "?")), str(span["attributes"]["output_digest"]))
        for span in _walk_postorder(tree)
        if "output_digest" in span.get("attributes", {})
    ]


def _event_kind_fields(event) -> tuple[str, dict]:
    """``(kind, fields)`` of a :class:`PipelineEvent` or its dict form."""
    if isinstance(event, Mapping):
        return str(event.get("kind", "?")), dict(event.get("fields", {}))
    return event.kind, dict(event.fields)


def _semantic_events(events) -> list[tuple[str, tuple]]:
    """The comparable skeleton of an event log.

    Keeps only :data:`SEMANTIC_EVENT_KINDS`, strips
    :data:`VOLATILE_EVENT_FIELDS`, and normalises each survivor to a
    hashable ``(kind, sorted fields)`` pair.
    """
    skeleton: list[tuple[str, tuple]] = []
    for event in events:
        kind, fields = _event_kind_fields(event)
        if kind not in SEMANTIC_EVENT_KINDS:
            continue
        kept = tuple(
            (key, str(fields[key]))
            for key in sorted(fields)
            if key not in VOLATILE_EVENT_FIELDS
        )
        skeleton.append((kind, kept))
    return skeleton


def _render_semantic(entry: tuple[str, tuple]) -> str:
    kind, fields = entry
    rendered = " ".join(f"{key}={value}" for key, value in fields)
    return f"{kind} {rendered}".strip()


def first_diverging_event(events_a, events_b) -> str | None:
    """First semantic event where two runs' logs disagree, or ``None``.

    Compares the deterministic skeletons (:func:`_semantic_events`) of
    both logs position by position, so a divergence is attributed to
    the first *event* — finer-grained than the first diverging stage
    when, say, a cluster-count milestone moved inside an otherwise
    identical stage sequence.  Returns a human-readable description of
    the disagreement.
    """
    skel_a = _semantic_events(events_a)
    skel_b = _semantic_events(events_b)
    for index, (entry_a, entry_b) in enumerate(zip(skel_a, skel_b)):
        if entry_a != entry_b:
            return (
                f"semantic event #{index}: "
                f"{_render_semantic(entry_a)}  ->  {_render_semantic(entry_b)}"
            )
    if len(skel_a) != len(skel_b):
        index = min(len(skel_a), len(skel_b))
        longer = skel_a if len(skel_a) > len(skel_b) else skel_b
        which = "reference" if len(skel_a) > len(skel_b) else "candidate"
        return (
            f"semantic event #{index}: only in {which} run: "
            f"{_render_semantic(longer[index])}"
        )
    return None


def first_diverging_stage(tree_a: Mapping, tree_b: Mapping) -> str | None:
    """Name of the earliest-completing span whose output digest diverged.

    Walks both exported span trees in post-order (the order stages
    finish in), pairing spans by name, and returns the first pair whose
    ``output_digest`` attributes disagree — ``None`` when every paired
    digest matches.
    """
    digests_b = dict(_span_digests(tree_b))
    for name, digest_a in _span_digests(tree_a):
        digest_b = digests_b.get(name)
        if digest_b is not None and digest_b != digest_a:
            return name
    return None


def _stage_seconds(tree: Mapping) -> dict[str, float]:
    """Direct-child stage wall times of an exported span tree."""
    return {
        str(child.get("name", "?")): float(child.get("seconds", 0.0))
        for child in tree.get("children", ())
    }


def _stage_cache(tree: Mapping) -> dict[str, str]:
    """Direct-child stage cache dispositions (schema >= 4 manifests)."""
    out: dict[str, str] = {}
    for child in tree.get("children", ()):
        status = child.get("attributes", {}).get("cache")
        if isinstance(status, str):
            out[str(child.get("name", "?"))] = status
    return out


def _scalar_metrics(metrics: Mapping) -> dict[str, float]:
    out: dict[str, float] = {}
    for section in ("counters", "gauges"):
        for key, value in metrics.get(section, {}).items():
            out[key] = float(value)
    return out


def diff_manifests(
    a: RunManifest | Mapping,
    b: RunManifest | Mapping,
    *,
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
    events_a=None,
    events_b=None,
) -> ManifestDiff:
    """Compare manifest ``a`` (the reference) against ``b`` (the candidate).

    ``events_a``/``events_b`` optionally supply the two runs' event
    logs (from :meth:`~repro.obs.history.RunStore.load_events`); when a
    digest diverges and both logs are present, the diff additionally
    names the first diverging semantic event.
    """
    a, b = _payload(a), _payload(b)
    diff = ManifestDiff(
        fingerprint_a=str(a.get("fingerprint", "")),
        fingerprint_b=str(b.get("fingerprint", "")),
    )

    digests_a = a.get("artifact_digests", {})
    digests_b = b.get("artifact_digests", {})
    for artifact in sorted(set(digests_a) | set(digests_b)):
        da, db = digests_a.get(artifact, ""), digests_b.get(artifact, "")
        if da != db:
            diff.digest_divergence[artifact] = (da, db)
    if diff.digest_divergence:
        diff.first_diverging_stage = first_diverging_stage(
            a.get("span_tree", {}), b.get("span_tree", {})
        )
        if events_a is not None and events_b is not None:
            diff.first_diverging_event = first_diverging_event(events_a, events_b)

    metrics_a = _scalar_metrics(a.get("metrics", {}))
    metrics_b = _scalar_metrics(b.get("metrics", {}))
    for key in set(metrics_a) | set(metrics_b):
        va, vb = metrics_a.get(key, 0.0), metrics_b.get(key, 0.0)
        if va != vb:
            diff.metric_deltas[key] = (va, vb)

    seconds_a = _stage_seconds(a.get("span_tree", {}))
    seconds_b = _stage_seconds(b.get("span_tree", {}))
    cache_a = _stage_cache(a.get("span_tree", {}))
    cache_b = _stage_cache(b.get("span_tree", {}))
    for stage in sorted(set(seconds_a) | set(seconds_b)):
        sa, sb = seconds_a.get(stage, 0.0), seconds_b.get(stage, 0.0)
        ca, cb = cache_a.get(stage), cache_b.get(stage)
        regression = (
            ca == cb
            and sb > sa * timing_tolerance
            and sb - sa > TIMING_NOISE_FLOOR
        )
        diff.timing_deltas.append(TimingDelta(stage, sa, sb, regression, ca, cb))

    deviations_a = set(a.get("golden_deviations", []))
    diff.new_golden_deviations = [
        deviation
        for deviation in b.get("golden_deviations", [])
        if deviation not in deviations_a
    ]

    health_a = a.get("health_summary", {}) or {}
    health_b = b.get("health_summary", {}) or {}
    for severity in sorted(set(health_a) | set(health_b)):
        ha = int(health_a.get(severity, 0))
        hb = int(health_b.get(severity, 0))
        if ha != hb:
            diff.health_deltas[severity] = (ha, hb)
    return diff


def metric_value(payload: Mapping, metric: str) -> float | None:
    """Extract one scalar series point from a manifest payload.

    ``metric`` is either ``stage:<span name>`` (wall seconds of that
    span in the trace), an exact snapshot key (labels included, e.g.
    ``epm.clusters{dimension=mu}``), a bare metric name, which sums
    every labelled counter/gauge sharing that base name, or a
    distribution quantile as ``<key>:pNN`` (e.g.
    ``executor.chunk_seconds:p50``) — resolved against the histogram
    section first (interpolated within the recorded buckets), then the
    sketch section (guaranteed-relative-error estimate).
    """
    if metric.startswith("stage:"):
        name = metric.split(":", 1)[1]
        for span in _walk_postorder(payload.get("span_tree", {})):
            if span.get("name") == name:
                return float(span.get("seconds", 0.0))
        return None
    match = re.fullmatch(r"(.+):p(\d+(?:\.\d+)?)", metric)
    if match:
        key, percent = match.group(1), float(match.group(2))
        if not 0.0 <= percent <= 100.0:
            return None
        for section, estimator in (
            ("histograms", quantile_from_payload),
            ("sketches", sketch_quantile_from_payload),
        ):
            series = payload.get("metrics", {}).get(section, {})
            candidates = (
                [series[key]]
                if key in series
                else [value for k, value in series.items() if base_name(k) == key]
            )
            if len(candidates) == 1:
                return estimator(candidates[0], percent / 100.0)
        return None  # absent, or ambiguous across labels
    scalars = _scalar_metrics(payload.get("metrics", {}))
    if metric in scalars:
        return scalars[metric]
    summed = [value for key, value in scalars.items() if base_name(key) == metric]
    if summed:
        return float(sum(summed))
    return None


def render_history(
    store: RunStore,
    metric: str,
    *,
    fingerprint: str | None = None,
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
    width: int = 30,
) -> str:
    """Time series of ``metric`` over the stored runs, with drift flags.

    Flags: ``G!`` marks runs whose manifest self-reported golden
    deviations; ``T!`` marks values outside the tolerance band around
    the median of the preceding runs (both directions — for counts a
    drop is as suspicious as a jump).
    """
    entries = store.entries(fingerprint)
    if not entries:
        return f"run store {store.root}: no stored runs"
    rows: list[tuple[dict, float | None, dict]] = []
    for entry in entries:
        payload = store.load_payload(entry["run_id"])
        rows.append((entry, metric_value(payload, metric), payload))
    values = [value for _e, value, _p in rows if value is not None]
    if not values:
        return f"metric {metric!r}: not present in any stored run"
    peak = max(abs(v) for v in values) or 1.0

    lines = [f"{metric} over {len(rows)} stored run(s) in {store.root}"]
    drifted = 0
    seen: list[float] = []
    for entry, value, payload in rows:
        flags = []
        if payload.get("golden_deviations"):
            flags.append("G!")
        if value is not None and seen:
            median = sorted(seen)[len(seen) // 2]
            band_low = median / timing_tolerance
            band_high = median * timing_tolerance
            floor = TIMING_NOISE_FLOOR if metric.startswith("stage:") else 0.0
            if (
                abs(value - median) > floor
                and not band_low <= value <= band_high
            ):
                flags.append("T!")
        if flags:
            drifted += 1
        bar = "█" * max(1, round(abs(value) / peak * width)) if value else ""
        rendered = f"{value:12.4f}" if value is not None else "         n/a"
        lines.append(
            f"  {entry['run_id']}  {entry.get('created_at') or '-':<22} "
            f"{rendered}  {bar:<{width}} {' '.join(flags)}".rstrip()
        )
        if value is not None:
            seen.append(value)
    lines.append(
        f"drift: {drifted} flagged run(s) "
        f"(tolerance band x{timing_tolerance:g}, G!=golden deviation, "
        "T!=outside trailing-median band)"
    )
    return "\n".join(lines)
