"""The metric-name catalogue and emitted-JSON validators.

Every metric the pipeline emits is declared here, name -> kind; the
catalogue is mirrored in ``docs/ARCHITECTURE.md``.  CI runs this module
against the smoke scenario's ``--metrics-out``/``--manifest`` output,
so renaming or adding a metric without updating the catalogue (and the
docs) fails the build — the catalogue stays honest by construction.

Usage::

    python -m repro.obs.validate --metrics m.json --manifest manifest.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs.manifest import MANIFEST_SCHEMA, SUPPORTED_MANIFEST_SCHEMAS
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    SUPPORTED_SNAPSHOT_SCHEMAS,
    base_name,
)

#: Every documented metric name and its kind.  One entry per name in
#: ``docs/ARCHITECTURE.md``'s catalogue table — keep the two in sync.
METRIC_CATALOGUE: dict[str, str] = {
    # honeypot layer
    "honeypot.events_observed": "counter",
    "honeypot.samples_collected": "counter",
    "honeypot.background_filtered": "counter",
    "honeypot.sensors_deployed": "gauge",
    # enrichment layer
    "enrich.samples_enriched": "counter",
    "enrich.samples_executed": "counter",
    "enrich.samples_not_executable": "counter",
    # EPM clustering (labelled by dimension=epsilon|pi|mu)
    "epm.observations": "counter",
    "epm.invariants_discovered": "counter",
    "epm.patterns_discovered": "counter",
    "epm.clusters": "gauge",
    # sandbox execution + LSH behaviour clustering
    "sandbox.executions": "counter",
    "sandbox.batch_size": "histogram",
    "lsh.unique_profiles": "gauge",
    "lsh.candidate_pairs": "counter",
    "lsh.pairs_verified": "counter",
    "lsh.bucket_size": "histogram",
    "lsh.bucket_size_sketch": "sketch",
    "lsh.buckets_skipped": "counter",
    "lsh.clusters": "gauge",
    # sharded observation (only with ScenarioConfig.shards > 0)
    "shards.observed": "counter",
    "shards.events": "histogram",
    "shards.events_sketch": "sketch",
    "shards.shard_events": "watermark",
    "shards.staged_observations": "watermark",
    # cross-view join of the M and B perspectives (analysis/crossview)
    "crossview.joint_samples": "gauge",
    "crossview.m_clusters": "gauge",
    "crossview.b_clusters": "gauge",
    "crossview.singleton_b_clusters": "gauge",
    "crossview.rare_singletons": "gauge",
    "crossview.singleton_anomalies": "gauge",
    "crossview.environment_splits": "gauge",
    # windowed landscape telemetry (only with ScenarioConfig.windows > 0)
    "window.count": "gauge",
    "window.weeks": "gauge",
    "window.events": "histogram",
    # SLO/health engine (labelled by severity=info|warning|critical)
    "health.findings": "counter",
    # scenario artifact cache (whole-run layer)
    "cache.hit": "counter",
    "cache.miss": "counter",
    "cache.evict": "counter",
    "cache.store": "counter",
    # incremental stage store (labelled by stage=<pipeline stage>)
    "cache.stage_hit": "counter",
    "cache.stage_miss": "counter",
    "cache.stage_store": "counter",
    # parallel executors.  chunks/items/chunk_seconds/worker_failures
    # are deliberately unlabelled: the chunk plan is backend-independent,
    # so their totals must compare equal across serial/thread/process.
    "executor.chunks": "counter",
    "executor.items": "counter",
    "executor.chunk_seconds": "histogram",
    "executor.chunk_seconds_sketch": "sketch",
    "executor.worker_failures": "counter",
    # labelled by backend=serial|thread|process
    "executor.jobs": "gauge",
    # resource watermarks (commutative max-merges; RSS is Unix-only)
    "executor.chunk_backlog": "watermark",
    "executor.event_queue_depth": "watermark",
    "worker.peak_rss_kb": "watermark",
    # bounded event transports (labelled by kind=<event>,transport=<name>)
    "events.dropped": "counter",
    "events.interarrival": "sketch",
    # classification serving (labelled by dimension=epsilon|pi|mu where
    # noted; emitted by repro.serve.classifier and the PatternSet
    # scan-result memo, never by scenario runs)
    "classify.requests": "counter",
    "classify.batch_rows": "counter",
    "classify.scan_cache_hit": "counter",
    "classify.scan_cache_miss": "counter",
    "classify.latency": "sketch",
}

#: Metrics every scenario run must emit, regardless of scale.
REQUIRED_SCENARIO_METRICS = frozenset(
    {
        "honeypot.events_observed",
        "honeypot.samples_collected",
        "honeypot.sensors_deployed",
        "enrich.samples_enriched",
        "enrich.samples_executed",
        "epm.observations",
        "epm.invariants_discovered",
        "epm.patterns_discovered",
        "epm.clusters",
        "sandbox.executions",
        "sandbox.batch_size",
        "lsh.unique_profiles",
        "lsh.candidate_pairs",
        "lsh.pairs_verified",
        "lsh.bucket_size",
        "lsh.buckets_skipped",
        "lsh.clusters",
        "crossview.joint_samples",
        "crossview.m_clusters",
        "crossview.b_clusters",
        "crossview.singleton_b_clusters",
        "crossview.rare_singletons",
        "crossview.singleton_anomalies",
        "crossview.environment_splits",
        "executor.chunks",
        "executor.items",
        "executor.chunk_seconds",
        "executor.chunk_seconds_sketch",
        "executor.chunk_backlog",
        "executor.jobs",
        "lsh.bucket_size_sketch",
    }
)

_KIND_SECTIONS = (
    ("counters", "counter"),
    ("gauges", "gauge"),
    ("histograms", "histogram"),
    ("sketches", "sketch"),
    ("watermarks", "watermark"),
)


def validate_metrics(
    payload: Mapping, *, require_scenario: bool = False
) -> list[str]:
    """Errors in a metrics-snapshot dict; empty list means valid.

    Checks the schema version, that every emitted name is in
    :data:`METRIC_CATALOGUE` under the right kind, and (with
    ``require_scenario``) that every name in
    :data:`REQUIRED_SCENARIO_METRICS` actually appears.
    """
    errors: list[str] = []
    if payload.get("schema") not in SUPPORTED_SNAPSHOT_SCHEMAS:
        errors.append(
            f"metrics: schema is {payload.get('schema')!r}, expected one of "
            f"{SUPPORTED_SNAPSHOT_SCHEMAS} (current: {SNAPSHOT_SCHEMA})"
        )
    seen: set[str] = set()
    for section, kind in _KIND_SECTIONS:
        for key in payload.get(section, {}):
            name = base_name(key)
            seen.add(name)
            documented = METRIC_CATALOGUE.get(name)
            if documented is None:
                errors.append(f"metrics: undocumented metric {name!r} (from {key!r})")
            elif documented != kind:
                errors.append(
                    f"metrics: {name!r} emitted as {kind}, documented as {documented}"
                )
    for key, sketch in payload.get("sketches", {}).items():
        errors.extend(_check_sketch_payload(key, sketch))
    if require_scenario:
        for name in sorted(REQUIRED_SCENARIO_METRICS - seen):
            errors.append(f"metrics: required scenario metric {name!r} missing")
    return errors


def _check_sketch_payload(key: str, payload: object) -> list[str]:
    """Structural errors in one exported sketch payload.

    Internal-consistency checks only (shape, count accounting) — the
    relative-error guarantee itself is property-tested, not validated
    per run.
    """
    if not isinstance(payload, Mapping):
        return [f"metrics: sketch {key!r} payload must be a mapping"]
    errors: list[str] = []
    alpha = payload.get("alpha")
    if not isinstance(alpha, (int, float)) or not 0.0 < float(alpha) < 1.0:
        errors.append(f"metrics: sketch {key!r} alpha {alpha!r} not in (0, 1)")
    max_bins = payload.get("max_bins")
    if not isinstance(max_bins, int) or max_bins < 2:
        errors.append(f"metrics: sketch {key!r} max_bins {max_bins!r} < 2")
    bins = payload.get("bins", {})
    if not isinstance(bins, Mapping):
        errors.append(f"metrics: sketch {key!r} bins must be a mapping")
        bins = {}
    binned = 0
    for index, count in bins.items():
        try:
            int(index)
        except (TypeError, ValueError):
            errors.append(f"metrics: sketch {key!r} bin index {index!r} not an int")
        if not isinstance(count, int) or count < 1:
            errors.append(
                f"metrics: sketch {key!r} bin {index!r} count {count!r} "
                "must be a positive integer"
            )
        else:
            binned += count
    if isinstance(max_bins, int) and len(bins) > max_bins:
        errors.append(
            f"metrics: sketch {key!r} holds {len(bins)} bins, over its "
            f"max_bins={max_bins} cap"
        )
    zeros = payload.get("zeros", 0)
    count = payload.get("count", 0)
    if (
        isinstance(zeros, int)
        and isinstance(count, int)
        and zeros + binned != count
    ):
        errors.append(
            f"metrics: sketch {key!r} count {count} != zeros {zeros} + "
            f"binned {binned} (observations lost)"
        )
    return errors


def validate_manifest(payload: Mapping) -> list[str]:
    """Errors in a run-manifest dict; empty list means valid.

    Accepts every schema in
    :data:`~repro.obs.manifest.SUPPORTED_MANIFEST_SCHEMAS` (stored runs
    from earlier layouts stay valid); the schema-2 fields
    (``created_at``, ``golden_deviations``) are only required from
    schema 2 on.
    """
    errors: list[str] = []
    schema = payload.get("schema")
    if schema not in SUPPORTED_MANIFEST_SCHEMAS:
        errors.append(
            f"manifest: schema is {schema!r}, expected one of "
            f"{SUPPORTED_MANIFEST_SCHEMAS} (current: {MANIFEST_SCHEMA})"
        )
    fingerprint = payload.get("fingerprint")
    if not (isinstance(fingerprint, str) and len(fingerprint) == 64):
        errors.append("manifest: fingerprint must be a 64-hex-char string")
    if not isinstance(payload.get("seed"), int):
        errors.append("manifest: seed must be an integer")
    for key in ("config", "span_tree", "metrics", "artifact_digests"):
        if not isinstance(payload.get(key), Mapping):
            errors.append(f"manifest: {key} must be a mapping")
    if not isinstance(payload.get("library_version"), str):
        errors.append("manifest: library_version must be a string")
    span_tree = payload.get("span_tree")
    if isinstance(span_tree, Mapping) and "name" not in span_tree:
        errors.append("manifest: span_tree root has no name")
    digests = payload.get("artifact_digests")
    if isinstance(digests, Mapping):
        if not digests:
            errors.append("manifest: artifact_digests is empty")
        for artifact, digest in digests.items():
            if not (isinstance(digest, str) and len(digest) == 64):
                errors.append(
                    f"manifest: digest of {artifact!r} is not a 64-hex-char string"
                )
    metrics = payload.get("metrics")
    if isinstance(metrics, Mapping) and metrics:
        errors.extend(validate_metrics(metrics))
    if isinstance(schema, int) and schema >= 2:
        if not isinstance(payload.get("created_at"), str):
            errors.append("manifest: created_at must be a string (schema >= 2)")
        deviations = payload.get("golden_deviations")
        if not isinstance(deviations, list) or not all(
            isinstance(d, str) for d in deviations
        ):
            errors.append(
                "manifest: golden_deviations must be a list of strings (schema >= 2)"
            )
    if isinstance(schema, int) and schema >= 4:
        stages = payload.get("stage_fingerprints")
        if not isinstance(stages, Mapping):
            errors.append(
                "manifest: stage_fingerprints must be a mapping (schema >= 4)"
            )
        else:
            for stage, fingerprint in stages.items():
                if not (isinstance(fingerprint, str) and len(fingerprint) == 64):
                    errors.append(
                        f"manifest: stage fingerprint of {stage!r} is not a "
                        "64-hex-char string"
                    )
        if isinstance(span_tree, Mapping):
            errors.extend(_check_span_cache_attributes(span_tree))
    if isinstance(schema, int) and schema >= 5:
        summary = payload.get("health_summary")
        if not isinstance(summary, Mapping):
            errors.append("manifest: health_summary must be a mapping (schema >= 5)")
        else:
            from repro.obs.health import SEVERITIES

            for severity, count in summary.items():
                if severity not in SEVERITIES:
                    errors.append(
                        f"manifest: health_summary severity {severity!r} is not "
                        f"one of {SEVERITIES} (schema >= 5)"
                    )
                elif not isinstance(count, int) or count < 0:
                    errors.append(
                        f"manifest: health_summary[{severity!r}] must be a "
                        "non-negative integer (schema >= 5)"
                    )
    if isinstance(schema, int) and schema >= 6:
        errors.extend(_check_event_drops(payload))
    return errors


def _check_event_drops(payload: Mapping) -> list[str]:
    """Schema-6 drop-accounting errors: structure of ``event_drops``
    plus its reconciliation against the ``events.dropped`` counters.

    Every dropped event must be accounted twice and consistently: the
    manifest's per-transport map and the metric counters (folded from
    the same :meth:`~repro.obs.events.EventBus.drop_counts` call) have
    to agree in both directions.
    """
    from repro.obs.events import EVENT_KINDS
    from repro.obs.metrics import parse_key

    errors: list[str] = []
    drops = payload.get("event_drops")
    if not isinstance(drops, Mapping):
        return ["manifest: event_drops must be a mapping (schema >= 6)"]
    known = frozenset(EVENT_KINDS)
    flat: dict[tuple[str, str], int] = {}
    for transport, kinds in drops.items():
        if not isinstance(kinds, Mapping):
            errors.append(
                f"manifest: event_drops[{transport!r}] must be a mapping"
            )
            continue
        for kind, count in kinds.items():
            if kind not in known:
                errors.append(
                    f"manifest: event_drops[{transport!r}] names unknown "
                    f"event kind {kind!r}"
                )
            if not isinstance(count, int) or count < 1:
                errors.append(
                    f"manifest: event_drops[{transport!r}][{kind!r}] must "
                    "be a positive integer"
                )
            else:
                flat[(str(transport), str(kind))] = count
    metrics = payload.get("metrics")
    if not (isinstance(metrics, Mapping) and metrics):
        return errors
    counted: dict[tuple[str, str], int] = {}
    for key, value in metrics.get("counters", {}).items():
        name, labels = parse_key(key)
        if name == "events.dropped":
            counted[(labels.get("transport", "?"), labels.get("kind", "?"))] = int(
                value
            )
    for (transport, kind), claimed in sorted(flat.items()):
        if counted.get((transport, kind)) != claimed:
            errors.append(
                f"manifest: event_drops claims {claimed} dropped "
                f"{kind!r} on {transport!r}, the events.dropped counter "
                f"says {counted.get((transport, kind))}"
            )
    for (transport, kind), value in sorted(counted.items()):
        if (transport, kind) not in flat:
            errors.append(
                f"manifest: events.dropped counter for {kind!r} on "
                f"{transport!r} ({value}) has no event_drops entry"
            )
    return errors


#: Legal values of the per-span ``cache`` attribute (schema >= 4):
#: replayed from the stage store, recomputed under an active store, or
#: computed with no store consulted.
SPAN_CACHE_STATUSES = frozenset({"hit", "miss", "off"})


def _check_span_cache_attributes(tree: Mapping) -> list[str]:
    """Errors for pipeline-stage spans without a valid ``cache`` attribute.

    Schema 4 manifests no longer assume a whole-run cache: every direct
    child of the root span (the pipeline stages) must say whether it
    was replayed (``hit``), recomputed (``miss``) or ran cache-less
    (``off``).  Nested spans (LSH sub-phases, enrichment batches) only
    exist on computed stages and carry no cache attribute.
    """
    errors: list[str] = []
    for child in tree.get("children", ()):
        if not isinstance(child, Mapping):
            continue
        status = child.get("attributes", {}).get("cache")
        if status not in SPAN_CACHE_STATUSES:
            errors.append(
                f"manifest: stage span {child.get('name')!r} has cache "
                f"attribute {status!r}, expected one of "
                f"{sorted(SPAN_CACHE_STATUSES)} (schema >= 4)"
            )
    return errors


def validate_windows(payload: Mapping, *, manifest: Mapping | None = None) -> list[str]:
    """Errors in a window-report dict; empty list means valid.

    Checks the schema version, that every documented series
    (:data:`~repro.obs.windows.WINDOW_SERIES`) is present with exactly
    ``n_windows`` points and no undocumented series sneaks in, and —
    with the run's ``manifest`` payload on hand — that the report's
    fingerprint matches the manifest's (a window sidecar must describe
    the run it sits next to).
    """
    from repro.obs.windows import WINDOW_SERIES, WINDOWS_SCHEMA

    errors: list[str] = []
    if payload.get("schema") != WINDOWS_SCHEMA:
        errors.append(
            f"windows: schema is {payload.get('schema')!r}, expected {WINDOWS_SCHEMA}"
        )
    series = payload.get("series")
    if not isinstance(series, Mapping):
        errors.append("windows: series must be a mapping")
        series = {}
    n_windows = payload.get("n_windows")
    if not isinstance(n_windows, int) or n_windows < 0:
        errors.append("windows: n_windows must be a non-negative integer")
        n_windows = None
    for name in WINDOW_SERIES:
        if name not in series:
            errors.append(f"windows: documented series {name!r} missing")
    for name in sorted(series):
        if name not in WINDOW_SERIES:
            errors.append(f"windows: undocumented series {name!r}")
        elif n_windows is not None and len(series[name]) != n_windows:
            errors.append(
                f"windows: series {name!r} has {len(series[name])} point(s), "
                f"expected n_windows={n_windows}"
            )
    if manifest is not None:
        fingerprint = manifest.get("fingerprint")
        if payload.get("fingerprint") != fingerprint:
            errors.append(
                f"windows: fingerprint {payload.get('fingerprint')!r} does not "
                f"match the manifest's {fingerprint!r}"
            )
    return errors


def validate_events(lines: Sequence[str]) -> list[str]:
    """Errors in a JSON-lines event log; empty list means valid.

    Checks every line parses, carries the current event schema and a
    known kind, that sequence numbers are contiguous (a gap means a
    transport dropped an event mid-stream), and that timestamps never
    go backwards (the bus clock is monotonic; forwarded worker events
    are re-stamped on merge).  The expected sequence starts at the
    first record's ``seq`` rather than 0, so a size-rotated log — whose
    older lines moved to a backup file — still validates.
    """
    from repro.obs.events import EVENT_SCHEMA, EVENT_KINDS

    known = frozenset(EVENT_KINDS)
    errors: list[str] = []
    expected_seq: int | None = None
    last_t = float("-inf")
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"events line {number}: does not parse: {error}")
            continue
        if record.get("schema") != EVENT_SCHEMA:
            errors.append(
                f"events line {number}: schema is {record.get('schema')!r}, "
                f"expected {EVENT_SCHEMA}"
            )
        kind = record.get("kind")
        if kind not in known:
            errors.append(f"events line {number}: unknown event kind {kind!r}")
        seq = record.get("seq")
        if expected_seq is None:
            expected_seq = seq if isinstance(seq, int) else 0  # rotated logs
        if seq != expected_seq:
            errors.append(
                f"events line {number}: seq is {seq!r}, expected {expected_seq} "
                "(gap or reorder in the stream)"
            )
            if isinstance(seq, int):
                expected_seq = seq
        expected_seq = (expected_seq or 0) + 1
        t = record.get("t")
        if not isinstance(t, (int, float)):
            errors.append(f"events line {number}: t is {t!r}, expected a number")
        elif t < last_t:
            errors.append(
                f"events line {number}: t went backwards ({t} after {last_t})"
            )
        else:
            last_t = float(t)
        if not isinstance(record.get("fields", {}), Mapping):
            errors.append(f"events line {number}: fields must be a mapping")
    return errors


def _count_spans(tree: Mapping) -> int:
    """Non-root span count of an exported span tree."""
    return sum(1 + _count_spans(child) for child in tree.get("children", ()))


def crosscheck_events(lines: Sequence[str], manifest: Mapping) -> list[str]:
    """Consistency errors between an event log and its run manifest.

    The two views of one run must agree: the stream's ``stage.finish``
    count must equal the number of non-root spans in the manifest's
    span tree, and every per-kind count in the manifest's
    ``event_summary`` (schema >= 3, when present) must be covered by
    the log.  The log may carry *extra* events — the CLI's session bus
    also records cache interactions that happen around the run — but it
    can never carry fewer than the manifest claims *plus* whatever the
    manifest's ``event_drops`` (schema >= 6) admits the file sink
    rotated away: kept + dropped >= claimed, per kind.  Overflow may
    lose events from a sink, never from the accounting.
    """
    errors: list[str] = []
    counts: dict[str, int] = {}
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # already reported by validate_events
        kind = str(record.get("kind"))
        counts[kind] = counts.get(kind, 0) + 1
    n_spans = _count_spans(manifest.get("span_tree", {}))
    file_drops = manifest.get("event_drops", {})
    file_drops = (
        dict(file_drops.get("file", {})) if isinstance(file_drops, Mapping) else {}
    )
    n_finishes = counts.get("stage.finish", 0)
    n_dropped_finishes = int(file_drops.get("stage.finish", 0))
    if n_finishes + n_dropped_finishes < n_spans or n_finishes > n_spans:
        errors.append(
            f"events/manifest: {n_finishes} stage.finish event(s) "
            f"(+{n_dropped_finishes} drop-accounted) but {n_spans} "
            "non-root span(s) in the manifest span tree"
        )
    summary = manifest.get("event_summary")
    if isinstance(summary, Mapping):
        for kind in sorted(summary):
            claimed = int(summary[kind])
            kept = counts.get(kind, 0)
            dropped = int(file_drops.get(kind, 0))
            if kept + dropped < claimed:
                errors.append(
                    f"events/manifest: event_summary claims {claimed} "
                    f"{kind!r} event(s), the log has {kept} and only "
                    f"{dropped} are drop-accounted"
                )
    return errors


def validate_run_store(root: str | Path) -> dict[str, list[str]]:
    """Per-file errors across a run store; empty dict means valid.

    Checks the index parses, every indexed file exists, every stored
    manifest validates, the file lives under its manifest's fingerprint
    directory, and the run id matches the manifest's content address
    (the store's append-only guarantee rests on that address).
    """
    from repro.obs.history import RUN_ID_LENGTH, RunStore
    from repro.obs.manifest import RunManifest

    store = RunStore(root)
    failures: dict[str, list[str]] = {}
    index_key = str(store.index_path)
    if not store.index_path.is_file():
        # An empty (or not-yet-created) store is valid; stored runs
        # without an index are not.  Top-level files (e.g. a committed
        # reference manifest) are not stored runs.
        stray = sorted(store.root.glob("*/*.json"))
        if stray:
            return {
                index_key: [
                    "run store has stored runs but no index.json: "
                    + ", ".join(str(p) for p in stray[:5])
                ]
            }
        return {}
    try:
        entries = store.entries()
    except (json.JSONDecodeError, ValueError) as error:
        return {index_key: [f"index does not parse: {error}"]}
    for entry in entries:
        run_id = entry.get("run_id", "?")
        path = store.root / entry.get("path", f"{run_id}.json")
        errors: list[str] = []
        if not path.is_file():
            failures[str(path)] = ["indexed run file is missing"]
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            failures[str(path)] = [f"run file does not parse: {error}"]
            continue
        errors.extend(validate_manifest(payload))
        fingerprint = payload.get("fingerprint")
        if entry.get("fingerprint") != fingerprint:
            errors.append(
                f"index fingerprint {entry.get('fingerprint')!r} "
                f"does not match manifest {fingerprint!r}"
            )
        if path.parent.name != fingerprint:
            errors.append(
                f"stored under directory {path.parent.name!r}, "
                f"manifest fingerprint is {fingerprint!r}"
            )
        try:
            content_id = RunManifest.from_dict(payload).content_id()
        except Exception as error:  # broken payloads already reported above
            errors.append(f"content address not computable: {error}")
        else:
            if content_id[:RUN_ID_LENGTH] != run_id:
                errors.append(
                    f"run id {run_id!r} does not match content address "
                    f"{content_id[:RUN_ID_LENGTH]!r} (file edited in place?)"
                )
        events_file = path.with_name(f"{path.stem}.events.jsonl")
        if events_file.is_file():
            lines = events_file.read_text(encoding="utf-8").splitlines()
            errors.extend(validate_events(lines))
            errors.extend(crosscheck_events(lines, payload))
        windows_file = path.with_name(f"{path.stem}.windows.json")
        if windows_file.is_file():
            try:
                windows_payload = json.loads(
                    windows_file.read_text(encoding="utf-8")
                )
            except json.JSONDecodeError as error:
                errors.append(f"windows sidecar does not parse: {error}")
            else:
                errors.extend(validate_windows(windows_payload, manifest=payload))
        if errors:
            failures[str(path)] = errors
    return failures


def main(argv: Sequence[str] | None = None) -> int:
    """Validate emitted observability JSON files; exit 1 on any error."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="validate --metrics-out / --manifest output against the catalogue",
    )
    parser.add_argument("--metrics", default=None, help="metrics snapshot JSON path")
    parser.add_argument("--manifest", default=None, help="run manifest JSON path")
    parser.add_argument(
        "--events",
        default=None,
        metavar="JSONL",
        help="event log (JSON lines) to validate; with --manifest the "
        "stream is also cross-checked against the manifest's span tree "
        "and event summary",
    )
    parser.add_argument(
        "--windows",
        default=None,
        metavar="JSON",
        help="window-report sidecar to validate; with --manifest its "
        "fingerprint is also checked against the manifest's",
    )
    parser.add_argument(
        "--runs",
        default=None,
        metavar="DIR",
        help="also validate every stored run under this run-store root",
    )
    parser.add_argument(
        "--model",
        default=None,
        metavar="JSON",
        help="exported model artifact to validate: schema/kind markers, "
        "the recomputed content address, per-dimension pattern arity, "
        "root-pattern totality and mask-consistency",
    )
    parser.add_argument(
        "--rebuild-index",
        action="store_true",
        help="with --runs: regenerate a missing/corrupted index.json from "
        "the on-disk manifest tree before validating (refuses on content-"
        "address mismatch)",
    )
    parser.add_argument(
        "--query-index",
        action="store_true",
        help="with --runs: also check the persisted query index matches a "
        "fresh rebuild from the stored manifests",
    )
    parser.add_argument(
        "--no-require-scenario",
        dest="require_scenario",
        action="store_false",
        help="skip the required-scenario-metrics completeness check",
    )
    args = parser.parse_args(argv)
    if not any(
        (args.metrics, args.manifest, args.runs, args.events, args.windows, args.model)
    ):
        parser.error(
            "nothing to validate: pass --metrics, --manifest, --events, "
            "--windows, --model and/or --runs"
        )
    if (args.rebuild_index or args.query_index) and not args.runs:
        parser.error("--rebuild-index/--query-index need --runs")
    errors: list[str] = []
    if args.metrics:
        payload = json.loads(Path(args.metrics).read_text(encoding="utf-8"))
        errors.extend(
            validate_metrics(payload, require_scenario=args.require_scenario)
        )
    manifest_payload = None
    if args.manifest:
        manifest_payload = json.loads(Path(args.manifest).read_text(encoding="utf-8"))
        errors.extend(validate_manifest(manifest_payload))
    if args.events:
        lines = Path(args.events).read_text(encoding="utf-8").splitlines()
        errors.extend(validate_events(lines))
        if manifest_payload is not None:
            errors.extend(crosscheck_events(lines, manifest_payload))
    if args.windows:
        windows_payload = json.loads(Path(args.windows).read_text(encoding="utf-8"))
        errors.extend(validate_windows(windows_payload, manifest=manifest_payload))
    if args.model:
        from repro.serve.model import validate_model

        model_path = Path(args.model)
        if not model_path.is_file():
            errors.append(f"model: {model_path} does not exist")
        else:
            model_payload = json.loads(model_path.read_text(encoding="utf-8"))
            errors.extend(validate_model(model_payload))
    if args.runs:
        if args.rebuild_index:
            from repro.obs.history import RunStore

            try:
                count = RunStore(args.runs).rebuild_index()
            except ValueError as error:
                errors.append(f"rebuild-index: {error}")
            else:
                print(f"rebuilt index under {args.runs}: {count} run(s)")
        for path, file_errors in sorted(validate_run_store(args.runs).items()):
            errors.extend(f"{path}: {error}" for error in file_errors)
        if args.query_index:
            from repro.obs.query import validate_query_index

            errors.extend(validate_query_index(args.runs))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        checked = [
            p
            for p in (
                args.metrics,
                args.manifest,
                args.events,
                args.windows,
                args.model,
                args.runs,
            )
            if p
        ]
        print(f"ok: {', '.join(checked)} conform to the documented schema")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
