"""The metric-name catalogue and emitted-JSON validators.

Every metric the pipeline emits is declared here, name -> kind; the
catalogue is mirrored in ``docs/ARCHITECTURE.md``.  CI runs this module
against the smoke scenario's ``--metrics-out``/``--manifest`` output,
so renaming or adding a metric without updating the catalogue (and the
docs) fails the build — the catalogue stays honest by construction.

Usage::

    python -m repro.obs.validate --metrics m.json --manifest manifest.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.metrics import SNAPSHOT_SCHEMA, base_name

#: Every documented metric name and its kind.  One entry per name in
#: ``docs/ARCHITECTURE.md``'s catalogue table — keep the two in sync.
METRIC_CATALOGUE: dict[str, str] = {
    # honeypot layer
    "honeypot.events_observed": "counter",
    "honeypot.samples_collected": "counter",
    "honeypot.background_filtered": "counter",
    "honeypot.sensors_deployed": "gauge",
    # enrichment layer
    "enrich.samples_enriched": "counter",
    "enrich.samples_executed": "counter",
    "enrich.samples_not_executable": "counter",
    # EPM clustering (labelled by dimension=epsilon|pi|mu)
    "epm.observations": "counter",
    "epm.invariants_discovered": "counter",
    "epm.patterns_discovered": "counter",
    "epm.clusters": "gauge",
    # sandbox execution + LSH behaviour clustering
    "sandbox.executions": "counter",
    "sandbox.batch_size": "histogram",
    "lsh.unique_profiles": "gauge",
    "lsh.candidate_pairs": "counter",
    "lsh.pairs_verified": "counter",
    "lsh.clusters": "gauge",
    # scenario artifact cache
    "cache.hit": "counter",
    "cache.miss": "counter",
    "cache.evict": "counter",
    "cache.store": "counter",
    # parallel executors (labelled by backend=serial|thread|process)
    "executor.chunks": "counter",
    "executor.items": "counter",
    "executor.chunk_seconds": "histogram",
    "executor.jobs": "gauge",
}

#: Metrics every scenario run must emit, regardless of scale.
REQUIRED_SCENARIO_METRICS = frozenset(
    {
        "honeypot.events_observed",
        "honeypot.samples_collected",
        "honeypot.sensors_deployed",
        "enrich.samples_enriched",
        "enrich.samples_executed",
        "epm.observations",
        "epm.invariants_discovered",
        "epm.patterns_discovered",
        "epm.clusters",
        "sandbox.executions",
        "sandbox.batch_size",
        "lsh.unique_profiles",
        "lsh.candidate_pairs",
        "lsh.pairs_verified",
        "lsh.clusters",
        "executor.chunks",
        "executor.items",
        "executor.chunk_seconds",
        "executor.jobs",
    }
)

_KIND_SECTIONS = (
    ("counters", "counter"),
    ("gauges", "gauge"),
    ("histograms", "histogram"),
)


def validate_metrics(
    payload: Mapping, *, require_scenario: bool = False
) -> list[str]:
    """Errors in a metrics-snapshot dict; empty list means valid.

    Checks the schema version, that every emitted name is in
    :data:`METRIC_CATALOGUE` under the right kind, and (with
    ``require_scenario``) that every name in
    :data:`REQUIRED_SCENARIO_METRICS` actually appears.
    """
    errors: list[str] = []
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        errors.append(
            f"metrics: schema is {payload.get('schema')!r}, expected {SNAPSHOT_SCHEMA}"
        )
    seen: set[str] = set()
    for section, kind in _KIND_SECTIONS:
        for key in payload.get(section, {}):
            name = base_name(key)
            seen.add(name)
            documented = METRIC_CATALOGUE.get(name)
            if documented is None:
                errors.append(f"metrics: undocumented metric {name!r} (from {key!r})")
            elif documented != kind:
                errors.append(
                    f"metrics: {name!r} emitted as {kind}, documented as {documented}"
                )
    if require_scenario:
        for name in sorted(REQUIRED_SCENARIO_METRICS - seen):
            errors.append(f"metrics: required scenario metric {name!r} missing")
    return errors


def validate_manifest(payload: Mapping) -> list[str]:
    """Errors in a run-manifest dict; empty list means valid."""
    errors: list[str] = []
    if payload.get("schema") != MANIFEST_SCHEMA:
        errors.append(
            f"manifest: schema is {payload.get('schema')!r}, expected {MANIFEST_SCHEMA}"
        )
    fingerprint = payload.get("fingerprint")
    if not (isinstance(fingerprint, str) and len(fingerprint) == 64):
        errors.append("manifest: fingerprint must be a 64-hex-char string")
    if not isinstance(payload.get("seed"), int):
        errors.append("manifest: seed must be an integer")
    for key in ("config", "span_tree", "metrics", "artifact_digests"):
        if not isinstance(payload.get(key), Mapping):
            errors.append(f"manifest: {key} must be a mapping")
    if not isinstance(payload.get("library_version"), str):
        errors.append("manifest: library_version must be a string")
    span_tree = payload.get("span_tree")
    if isinstance(span_tree, Mapping) and "name" not in span_tree:
        errors.append("manifest: span_tree root has no name")
    digests = payload.get("artifact_digests")
    if isinstance(digests, Mapping):
        if not digests:
            errors.append("manifest: artifact_digests is empty")
        for artifact, digest in digests.items():
            if not (isinstance(digest, str) and len(digest) == 64):
                errors.append(
                    f"manifest: digest of {artifact!r} is not a 64-hex-char string"
                )
    metrics = payload.get("metrics")
    if isinstance(metrics, Mapping) and metrics:
        errors.extend(validate_metrics(metrics))
    return errors


def main(argv: Sequence[str] | None = None) -> int:
    """Validate emitted observability JSON files; exit 1 on any error."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="validate --metrics-out / --manifest output against the catalogue",
    )
    parser.add_argument("--metrics", default=None, help="metrics snapshot JSON path")
    parser.add_argument("--manifest", default=None, help="run manifest JSON path")
    parser.add_argument(
        "--no-require-scenario",
        dest="require_scenario",
        action="store_false",
        help="skip the required-scenario-metrics completeness check",
    )
    args = parser.parse_args(argv)
    if not args.metrics and not args.manifest:
        parser.error("nothing to validate: pass --metrics and/or --manifest")
    errors: list[str] = []
    if args.metrics:
        payload = json.loads(Path(args.metrics).read_text(encoding="utf-8"))
        errors.extend(
            validate_metrics(payload, require_scenario=args.require_scenario)
        )
    if args.manifest:
        payload = json.loads(Path(args.manifest).read_text(encoding="utf-8"))
        errors.extend(validate_manifest(payload))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        checked = [p for p in (args.metrics, args.manifest) if p]
        print(f"ok: {', '.join(checked)} conform to the documented schema")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
