"""Mergeable streaming-quantile sketch with a guaranteed relative error.

Fixed-bucket :class:`~repro.obs.metrics.Histogram` is the right
instrument when the value range is known up front; it is the wrong one
for unbounded-range series (chunk seconds at 1000x scale, LSH bucket
sizes, event inter-arrival gaps), where any fixed bucket layout either
saturates or wastes resolution.  :class:`QuantileSketch` is the
DDSketch-style answer: logarithmically spaced bins sized so every
quantile estimate is within a *relative* error ``alpha`` of the true
value, with a hard cap on the number of resident bins — O(max_bins)
memory no matter how many observations stream through.

Two properties make it fit the repro telemetry contract:

* **Deterministic serialization** — :meth:`QuantileSketch.as_dict` is a
  pure function of the observed multiset (bin counts are integers, the
  min/max are exact, nothing depends on insertion order), so two runs
  that observe the same values produce byte-identical payloads.  The
  floating ``sum`` is the one order-sensitive field; the parallel
  executors merge per-chunk snapshots in chunk order on every backend,
  so even it is bit-identical across serial/thread/process runs.
* **Exact merge** — :meth:`QuantileSketch.merge` folds another sketch's
  payload in by adding bin counts and re-applying the canonical
  *boundary-fold* collapse.  The collapse folds every bin more than
  ``max_bins`` below the highest occupied bin into the boundary bin —
  a rule keyed only on the global maximum index, so it commutes with
  merging: sketching shards independently and merging gives the same
  bins as one sketch fed everything.  That is what lets per-worker and
  per-shard sketches reduce into the run-level summary digest-checked.

Values must be >= 0 (telemetry series are counts, sizes and seconds);
values below :data:`MIN_TRACKABLE` land in an exact ``zeros`` counter
rather than a bin, and quantiles falling there report ``0.0``.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.util.validation import require

#: Default relative-error bound: quantile estimates are within 1%.
DEFAULT_ALPHA = 0.01

#: Default cap on resident bins.  With alpha=0.01 each bin spans a
#: factor of ~1.02, so 512 bins cover ~4 orders of magnitude above the
#: lowest retained bin before the boundary fold starts costing low-end
#: resolution (the fold only ever degrades the *smallest* values).
DEFAULT_MAX_BINS = 512

#: Observations below this are counted exactly as zeros, not binned.
MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """DDSketch-style streaming quantile sketch (non-negative values).

    >>> sketch = QuantileSketch(alpha=0.01)
    >>> for value in range(1, 1001):
    ...     sketch.observe(float(value))
    >>> true_p50 = 500.0
    >>> abs(sketch.quantile(0.5) - true_p50) <= 0.01 * true_p50
    True
    """

    __slots__ = (
        "alpha",
        "max_bins",
        "_gamma",
        "_log_gamma",
        "_max_index",
        "bins",
        "zeros",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self, alpha: float = DEFAULT_ALPHA, max_bins: int = DEFAULT_MAX_BINS
    ) -> None:
        require(0.0 < alpha < 1.0, "sketch alpha must be in (0, 1)")
        require(max_bins >= 2, "sketch needs at least two bins")
        self.alpha = float(alpha)
        self.max_bins = int(max_bins)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self.bins: dict[int, int] = {}
        self._max_index = 0  # meaningful only while bins is non-empty
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def _index(self, value: float) -> int:
        """The bin index of ``value``: ceil(log_gamma(value))."""
        return math.ceil(math.log(value) / self._log_gamma - 1e-12)

    def _value(self, index: int) -> float:
        """The representative value of bin ``index`` (its midpoint in
        relative terms: within ``alpha`` of anything the bin holds)."""
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    def observe(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        value = float(value)
        require(value >= 0.0, "sketch values must be non-negative")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value < MIN_TRACKABLE:
            self.zeros += 1
            return
        index = self._index(value)
        if not self.bins:
            self.bins[index] = 1
            self._max_index = index
            return
        if index > self._max_index:
            # A new global maximum can raise the boundary past resident
            # bins; re-fold so the invariant holds after every observe.
            self._max_index = index
            self.bins[index] = self.bins.get(index, 0) + 1
            self._collapse()
            return
        boundary = self._max_index - self.max_bins + 1
        if index < boundary:
            index = boundary  # fold the newcomer straight in
        self.bins[index] = self.bins.get(index, 0) + 1

    def _collapse(self) -> None:
        """Canonical boundary fold: every bin more than ``max_bins``
        below the highest occupied index folds into the boundary bin.

        The fold is a *standing invariant*, keyed only on the maximum
        occupied index — never on how full the sketch happens to be —
        so the resident bins are a pure function of the observed
        multiset: folding incrementally, folding once at the end, or
        folding after a merge all land in the same state.  That is the
        property that makes :meth:`merge` commute with observation.
        """
        if not self.bins:
            return
        self._max_index = max(self.bins)
        boundary = self._max_index - self.max_bins + 1
        folded = 0
        for index in [k for k in self.bins if k < boundary]:
            folded += self.bins.pop(index)
        if folded:
            self.bins[boundary] = self.bins.get(boundary, 0) + folded

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile; ``None`` on an empty sketch.

        For values that landed in a bin (>= :data:`MIN_TRACKABLE` and
        above the boundary fold) the estimate is within ``alpha``
        relative error of the true quantile.  Ranks that fall in the
        zeros counter report ``0.0`` exactly.
        """
        require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * (self.count - 1)
        if rank < self.zeros:
            return 0.0
        cumulative = self.zeros
        for index in sorted(self.bins):
            cumulative += self.bins[index]
            if rank < cumulative:
                return self._value(index)
        return self.max if self.max is not None else 0.0

    def merge(self, payload: "QuantileSketch | Mapping") -> None:
        """Fold another sketch (live or :meth:`as_dict` payload) in.

        Merging requires an identical ``(alpha, max_bins)`` shape, the
        same way histogram merges require identical buckets.
        """
        other = payload.as_dict() if isinstance(payload, QuantileSketch) else payload
        require(
            float(other.get("alpha", -1.0)) == self.alpha
            and int(other.get("max_bins", -1)) == self.max_bins,
            "cannot merge sketches with different (alpha, max_bins) shapes",
        )
        for key, count in other.get("bins", {}).items():
            index = int(key)
            self.bins[index] = self.bins.get(index, 0) + int(count)
        self.zeros += int(other.get("zeros", 0))
        self.count += int(other.get("count", 0))
        self.total += float(other.get("sum", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            theirs = other.get(bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(
                    self,
                    bound,
                    float(theirs) if ours is None else pick(ours, float(theirs)),
                )
        self._collapse()

    def as_dict(self) -> dict:
        """Deterministic plain-dict export (bin keys are stringified
        indices; counts, zeros, min and max are exact)."""
        return {
            "alpha": self.alpha,
            "max_bins": self.max_bins,
            "zeros": self.zeros,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "bins": {str(index): self.bins[index] for index in sorted(self.bins)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QuantileSketch":
        """Rebuild a sketch from its :meth:`as_dict` form."""
        sketch = cls(
            alpha=float(payload.get("alpha", DEFAULT_ALPHA)),
            max_bins=int(payload.get("max_bins", DEFAULT_MAX_BINS)),
        )
        sketch.merge(payload)
        # merge() recomputes count/sum from the payload, so only the
        # exact fields need restating — nothing else to do.
        return sketch


def sketch_quantile_from_payload(payload: Mapping, q: float) -> float | None:
    """Quantile estimate straight off an exported sketch payload.

    The sketch-shaped sibling of
    :func:`repro.obs.metrics.quantile_from_payload`: lets ``repro obs
    history``/``query`` read quantiles of stored runs without
    rebuilding live instruments.
    """
    require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
    if int(payload.get("count", 0)) == 0:
        return None
    return QuantileSketch.from_dict(payload).quantile(q)
