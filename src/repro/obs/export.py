"""Exporters: one telemetry model, many consumer formats.

The pipeline records everything once — metrics snapshots, span trees,
event logs — and this module turns those canonical forms into what
external tooling expects:

* :func:`prometheus_text` — the Prometheus text exposition format of a
  metrics snapshot (``repro_`` prefix, counters as ``_total``,
  histograms as cumulative ``_bucket{le=...}`` series, streaming
  sketches as ``summary`` families with quantile samples, watermarks as
  gauges), ready for a textfile collector or pushgateway.  Label values
  are escaped per the exposition grammar (backslash, quote, newline).
* :func:`openmetrics_text` — the OpenMetrics text format: the same
  family rendering with the spec's hard requirements made explicit
  (``_total`` sample suffix on counters, an explicit ``+Inf`` bucket on
  every histogram, the mandatory ``# EOF`` terminator), for scrapers
  that negotiate ``application/openmetrics-text``.
* :func:`jsonl_samples` / :func:`jsonl_text` — one JSON object per
  sample, the lingua franca of log shippers.
* Chrome traces reuse :func:`repro.obs.profile.chrome_trace` on the
  manifest's span tree; :func:`export_payload` dispatches all three.

Inputs are duck-typed payload dicts: either a bare metrics snapshot
(:meth:`~repro.obs.metrics.MetricsSnapshot.as_dict` form) or a full run
manifest (whose ``metrics``/``span_tree`` sections are used), so the
CLI can feed it a metrics JSON file, a manifest file, or a stored run
id interchangeably.
"""

from __future__ import annotations

import json
import re
from typing import Iterator, Mapping

from repro.obs.metrics import parse_key
from repro.obs.sketch import sketch_quantile_from_payload
from repro.util.validation import require

#: Formats :func:`export_payload` understands.
EXPORT_FORMATS = ("prometheus", "openmetrics", "jsonl", "chrome")

#: Prefix of every exported Prometheus metric name.
PROMETHEUS_PREFIX = "repro_"

#: Quantiles a streaming sketch exports as summary samples.
SKETCH_EXPORT_QUANTILES = (0.5, 0.9, 0.99)


def metrics_section(payload: Mapping) -> dict:
    """The metrics snapshot inside ``payload`` (manifest or bare snapshot)."""
    if "counters" in payload or "gauges" in payload or "histograms" in payload:
        return dict(payload)
    return dict(payload.get("metrics", {}))


def span_tree_section(payload: Mapping) -> dict:
    """The span tree inside ``payload`` (empty for bare snapshots)."""
    return dict(payload.get("span_tree", {}))


def window_series_section(payload: Mapping) -> dict:
    """Window series attached to ``payload`` (empty when absent).

    The CLI attaches a run's window-report sidecar under ``windows``
    before exporting, so per-window landscape series ride along as
    ``window_series{series=...,window=...}`` gauge samples.
    """
    return dict(dict(payload.get("windows", {})).get("series", {}))


def _prom_name(name: str) -> str:
    """A valid Prometheus metric name: dots to underscores, prefixed."""
    return PROMETHEUS_PREFIX + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition-format grammar.

    Backslash, double quote and newline are the three characters the
    Prometheus/OpenMetrics text format requires escaping inside quoted
    label values; anything else passes through verbatim.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{key}="{_escape_label_value(labels[key])}"' for key in sorted(labels)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _cumulative_buckets(payload: Mapping) -> list[tuple[str, int]]:
    """``(le, cumulative count)`` rows of a histogram payload, +Inf last."""
    raw = payload.get("buckets", {})
    bounds = sorted(float(key) for key in raw if key != "+inf")
    rows: list[tuple[str, int]] = []
    running = 0
    for bound in bounds:
        running += int(raw[repr(bound)])
        rows.append((_format_value(bound), running))
    running += int(raw.get("+inf", 0))
    rows.append(("+Inf", running))
    return rows


#: Units derivable from a catalogued metric name, suffix -> unit.  The
#: OpenMetrics spec ties ``# UNIT`` to the metric name's own suffix
#: (``..._seconds`` may only declare ``seconds``), so the map is keyed
#: by name ending rather than by a separate registry.
_UNIT_SUFFIXES = (("seconds", "seconds"), ("bytes", "bytes"))


def _metric_unit(name: str) -> str | None:
    """The unit a catalogued metric name self-declares, if any."""
    from repro.obs.validate import METRIC_CATALOGUE

    if name not in METRIC_CATALOGUE:
        return None
    tail = name.rsplit(".", 1)[-1].rsplit("_", 1)[-1]
    for suffix, unit in _UNIT_SUFFIXES:
        if tail == suffix:
            return unit
    return None


def _family_header(name: str, kind: str, units: bool) -> list[str]:
    """``# TYPE`` (and, in OpenMetrics mode, ``# UNIT``) family lines."""
    prom = _prom_name(name)
    lines = [f"# TYPE {prom} {kind}"]
    if units:
        unit = _metric_unit(name)
        if unit is not None:
            lines.append(f"# UNIT {prom} {unit}")
    return lines


def _exposition_lines(payload: Mapping, *, units: bool) -> list[str]:
    """The shared family rendering behind both text expositions.

    ``units`` turns on the OpenMetrics ``# UNIT`` metadata for
    catalogued metrics whose names self-declare a unit (``*_seconds``,
    ``*_bytes``); Prometheus has no UNIT line, so its exposition passes
    ``False``.
    """
    metrics = metrics_section(payload)
    lines: list[str] = []
    for key in sorted(metrics.get("counters", {})):
        name, labels = parse_key(key)
        prom = _prom_name(name) + "_total"
        lines.extend(_family_header(name, "counter", units))
        lines.append(
            f"{prom}{_prom_labels(labels)} "
            f"{_format_value(metrics['counters'][key])}"
        )
    for key in sorted(metrics.get("gauges", {})):
        name, labels = parse_key(key)
        prom = _prom_name(name)
        lines.extend(_family_header(name, "gauge", units))
        lines.append(
            f"{prom}{_prom_labels(labels)} {_format_value(metrics['gauges'][key])}"
        )
    for key in sorted(metrics.get("histograms", {})):
        name, labels = parse_key(key)
        prom = _prom_name(name)
        histogram = metrics["histograms"][key]
        lines.extend(_family_header(name, "histogram", units))
        for le, cumulative in _cumulative_buckets(histogram):
            le_label = 'le="%s"' % le
            lines.append(
                f"{prom}_bucket{_prom_labels(labels, le_label)} {cumulative}"
            )
        lines.append(
            f"{prom}_sum{_prom_labels(labels)} "
            f"{repr(float(histogram.get('sum', 0.0)))}"
        )
        lines.append(
            f"{prom}_count{_prom_labels(labels)} {int(histogram.get('count', 0))}"
        )
    for key in sorted(metrics.get("sketches", {})):
        name, labels = parse_key(key)
        prom = _prom_name(name)
        sketch = metrics["sketches"][key]
        lines.extend(_family_header(name, "summary", units))
        for q in SKETCH_EXPORT_QUANTILES:
            estimate = sketch_quantile_from_payload(sketch, q)
            if estimate is None:
                continue
            q_label = 'quantile="%s"' % repr(float(q))
            lines.append(
                f"{prom}{_prom_labels(labels, q_label)} {repr(float(estimate))}"
            )
        lines.append(
            f"{prom}_sum{_prom_labels(labels)} "
            f"{repr(float(sketch.get('sum', 0.0)))}"
        )
        lines.append(
            f"{prom}_count{_prom_labels(labels)} {int(sketch.get('count', 0))}"
        )
    for key in sorted(metrics.get("watermarks", {})):
        name, labels = parse_key(key)
        prom = _prom_name(name)
        lines.extend(_family_header(name, "gauge", units))
        lines.append(
            f"{prom}{_prom_labels(labels)} "
            f"{_format_value(metrics['watermarks'][key])}"
        )
    series = window_series_section(payload)
    if series:
        prom = PROMETHEUS_PREFIX + "window_series"
        lines.append(f"# TYPE {prom} gauge")
        for name in sorted(series):
            for window, value in enumerate(series[name]):
                labels = {"series": name, "window": str(window)}
                lines.append(f"{prom}{_prom_labels(labels)} {_format_value(value)}")
    return lines


def prometheus_text(payload: Mapping) -> str:
    """Prometheus text exposition of a metrics snapshot or manifest.

    Counters become ``<name>_total``, histograms the conventional
    cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple;
    labels carry over from the rendered ``name{k=v}`` keys.  Output is
    deterministically ordered (sorted by metric key).
    """
    return "\n".join(_exposition_lines(payload, units=False)) + "\n"


def openmetrics_text(payload: Mapping) -> str:
    """OpenMetrics text exposition of a metrics snapshot or manifest.

    The family rendering is shared with :func:`prometheus_text` — the
    obs layer already emits counters as ``_total`` samples and closes
    every histogram with an explicit ``+Inf`` bucket, both of which
    OpenMetrics *requires* where Prometheus merely tolerates.  The spec
    adds two pieces of metadata on top: ``# UNIT`` lines for catalogued
    metrics whose names self-declare a unit (``*_seconds``/``*_bytes``),
    and the mandatory ``# EOF`` terminator — always the last line — that
    lets a scraper distinguish a complete exposition from a truncated
    one.
    """
    return "\n".join(_exposition_lines(payload, units=True)) + "\n# EOF\n"


def jsonl_samples(payload: Mapping) -> Iterator[dict]:
    """One flat dict per metric sample, in deterministic order."""
    metrics = metrics_section(payload)
    for section, sample_type in (("counters", "counter"), ("gauges", "gauge")):
        for key in sorted(metrics.get(section, {})):
            name, labels = parse_key(key)
            yield {
                "type": sample_type,
                "name": name,
                "labels": labels,
                "value": metrics[section][key],
            }
    for key in sorted(metrics.get("histograms", {})):
        name, labels = parse_key(key)
        histogram = metrics["histograms"][key]
        yield {
            "type": "histogram",
            "name": name,
            "labels": labels,
            "count": int(histogram.get("count", 0)),
            "sum": float(histogram.get("sum", 0.0)),
            "buckets": dict(histogram.get("buckets", {})),
        }
    for key in sorted(metrics.get("sketches", {})):
        name, labels = parse_key(key)
        sketch = metrics["sketches"][key]
        yield {
            "type": "sketch",
            "name": name,
            "labels": labels,
            "count": int(sketch.get("count", 0)),
            "sum": float(sketch.get("sum", 0.0)),
            "quantiles": {
                repr(float(q)): sketch_quantile_from_payload(sketch, q)
                for q in SKETCH_EXPORT_QUANTILES
            },
        }
    for key in sorted(metrics.get("watermarks", {})):
        name, labels = parse_key(key)
        yield {
            "type": "watermark",
            "name": name,
            "labels": labels,
            "value": metrics["watermarks"][key],
        }
    series = window_series_section(payload)
    for name in sorted(series):
        for window, value in enumerate(series[name]):
            yield {
                "type": "gauge",
                "name": "window.series",
                "labels": {"series": name, "window": str(window)},
                "value": value,
            }


def jsonl_text(payload: Mapping) -> str:
    """The :func:`jsonl_samples` stream rendered as JSON lines."""
    return "".join(
        json.dumps(sample, sort_keys=True, separators=(",", ":")) + "\n"
        for sample in jsonl_samples(payload)
    )


def export_payload(payload: Mapping, fmt: str) -> str:
    """Render ``payload`` in one of :data:`EXPORT_FORMATS`."""
    require(fmt in EXPORT_FORMATS, f"unknown export format {fmt!r}")
    if fmt == "prometheus":
        return prometheus_text(payload)
    if fmt == "openmetrics":
        return openmetrics_text(payload)
    if fmt == "jsonl":
        return jsonl_text(payload)
    tree = span_tree_section(payload)
    require(
        bool(tree),
        "chrome export needs a manifest with a span tree "
        "(bare metrics snapshots carry none)",
    )
    # Deferred import: profile pulls in resource/gc probing helpers the
    # text exporters never need.
    from repro.obs.profile import chrome_trace

    return json.dumps(chrome_trace(tree), sort_keys=True, indent=2) + "\n"
