"""The longitudinal analytics frame: every stored run, one queryable table.

The run store (:mod:`repro.obs.history`) accumulates manifests; ``obs
diff`` compares exactly two of them.  This module is the third step the
paper's framing asks for — *combining observation perspectives over
time* — by materializing **all** stored runs into one columnar
cross-run frame keyed by ``(fingerprint, run_id, created_at)``:

* :func:`build_frame` loads the store (through the persisted,
  incrementally refreshed :class:`QueryIndex`) into a
  :class:`QueryFrame` whose columns are resolved on demand from the
  small target-selector grammar shared with :mod:`repro.obs.health`:

  ========================  ==================================================
  selector                  resolves to (per run)
  ========================  ==================================================
  ``metric:<key>``          scalar via :func:`repro.obs.diff.metric_value`
                            (exact keys, bare names summing labels,
                            ``<hist>:pNN`` quantiles, ``stage:<span>``)
  ``series:<name>``         the run's per-window series (a vector)
  ``golden:deviations``     count of self-reported golden deviations
  ``span:<name>``           wall seconds of that span; ``span:<name>/attr``
                            reads a span attribute (``cpu_seconds``,
                            ``max_rss_kb``, ``gc_collections``).  Spans
                            replayed from the stage store (``cache: hit``)
                            resolve to ``None`` — replay milliseconds are
                            not comparable to compute seconds.
  ========================  ==================================================

* :func:`run_query` selects targets, filters by config fingerprint,
  aggregates (``min``/``max``/``mean``/``pNN``) and renders as a text
  table, JSON or an OpenMetrics exposition — the engine behind
  ``repro obs query``.

* :func:`attribute_cost` joins the per-span resource probes of
  :mod:`repro.obs.profile` with the PR-5 ``stage_fingerprints`` into a
  per-stage cost-attribution report: which stages a config delta
  re-keyed, and what they cost in seconds/CPU/RSS — "what did changing
  ``lsh.threshold`` cost?".

Everything here is a pure function of the stored payloads: frame
construction is deterministic (``QueryFrame.digest`` is digest-checked
in the tests and the query bench), and the index refresh never loads a
manifest it has already indexed.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.obs.history import RUN_ID_LENGTH, RunStore
from repro.obs.log import get_logger
from repro.util.canonical import canonical_digest
from repro.util.validation import require

log = get_logger("obs.query")

#: Persisted query-index file name under the run-store root.
QUERY_INDEX_NAME = "query_index.json"

#: Query-index schema version; bump on incompatible row layout changes.
QUERY_INDEX_SCHEMA = 1

#: Target schemes the selector grammar understands (superset of the
#: health engine's: ``span:`` is the analytics-only addition).
TARGET_SCHEMES = ("metric", "series", "golden", "span")

#: Span attributes a ``span:<name>/<attr>`` selector may read.
SPAN_ATTRS = ("seconds", "cpu_seconds", "max_rss_kb", "gc_collections")

#: Aggregations :func:`aggregate` understands (plus ``pNN`` quantiles).
AGGREGATES = ("min", "max", "mean")

#: Manifest sections a query-index row keeps.  Everything a target
#: selector can touch survives; the heavyweight rest (full config,
#: event summaries) stays behind in the manifest file.
_ROW_SECTIONS = (
    "metrics",
    "span_tree",
    "golden_deviations",
    "stage_fingerprints",
    "health_summary",
)


def parse_target(target: str) -> tuple[str, str]:
    """Split ``scheme:key``, validating the scheme."""
    scheme, colon, key = target.partition(":")
    require(
        bool(colon) and scheme in TARGET_SCHEMES,
        f"unknown target {target!r}: expected one of "
        + ", ".join(f"{s}:<key>" for s in TARGET_SCHEMES),
    )
    require(bool(key), f"target {target!r} names no key")
    return scheme, key


def _walk_spans(tree: Mapping) -> Iterator[Mapping]:
    yield tree
    for child in tree.get("children", ()):
        yield from _walk_spans(child)


def _span_value(tree: Mapping, key: str) -> float | None:
    """Resolve a ``span:`` key: ``<name>`` or ``<name>/<attr>``."""
    name, _slash, attr = key.partition("/")
    attr = attr or "seconds"
    require(
        attr in SPAN_ATTRS,
        f"unknown span attribute {attr!r}: expected one of {SPAN_ATTRS}",
    )
    for span in _walk_spans(tree):
        if span.get("name") != name:
            continue
        attributes = span.get("attributes", {})
        # A stage replayed from the stage store loads a pickle in
        # milliseconds; its wall time says nothing about the compute
        # cost the series tracks, so replays contribute no point.
        if attributes.get("cache") == "hit":
            return None
        if attr == "seconds":
            return float(span.get("seconds", 0.0))
        value = attributes.get(attr)
        return None if value is None else float(value)
    return None


def resolve_target(
    manifest: Mapping, windows: Mapping | None, target: str
) -> float | list[float] | None:
    """One run's value for ``target`` — scalar, vector, or ``None``.

    ``None`` means the run carries no such telemetry (no window report
    stored, a metric never emitted, a replayed span): absent, not zero.
    """
    scheme, key = parse_target(target)
    if scheme == "metric":
        from repro.obs.diff import metric_value

        return metric_value(manifest, key)
    if scheme == "golden":
        require(key == "deviations", f"unknown golden key {key!r}")
        return float(len(manifest.get("golden_deviations", [])))
    if scheme == "span":
        return _span_value(manifest.get("span_tree", {}), key)
    values = (windows or {}).get("series", {}).get(key)
    if values is None:
        return None
    return [float(v) for v in values]


def aggregate(values: Sequence[float], agg: str) -> float | None:
    """Reduce ``values`` with ``min``/``max``/``mean`` or ``pNN``.

    ``None`` entries are dropped first (absent telemetry never skews an
    aggregate); an all-absent column aggregates to ``None``.  ``pNN``
    quantiles interpolate linearly between order statistics, the same
    convention as ``numpy.percentile(..., method="linear")``.
    """
    present = [float(v) for v in values if v is not None]
    if not present:
        return None
    if agg == "min":
        return min(present)
    if agg == "max":
        return max(present)
    if agg == "mean":
        return sum(present) / len(present)
    match = re.fullmatch(r"p(\d+(?:\.\d+)?)", agg)
    require(
        match is not None,
        f"unknown aggregation {agg!r}: expected min, max, mean or pNN",
    )
    percent = float(match.group(1))
    require(0.0 <= percent <= 100.0, f"quantile {agg!r} out of range")
    ordered = sorted(present)
    rank = (len(ordered) - 1) * percent / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


@dataclass(frozen=True)
class RunRow:
    """One stored run's slice of the cross-run frame."""

    run_id: str
    fingerprint: str
    seed: int
    created_at: str
    #: Reduced manifest payload (:data:`_ROW_SECTIONS` only).
    manifest: Mapping
    #: The run's window-report payload, when one was stored.
    windows: Mapping | None = None
    #: Canonical digest of the row content, persisted in the query
    #: index so a warm frame digest never re-canonicalizes manifests.
    #: Empty means "not computed yet" (:meth:`content_digest` fills in).
    digest: str = ""

    def _core_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "created_at": self.created_at,
            "manifest": dict(self.manifest),
            "windows": dict(self.windows) if self.windows is not None else None,
        }

    def content_digest(self) -> str:
        return self.digest or canonical_digest(self._core_dict())

    def as_dict(self) -> dict:
        return {**self._core_dict(), "digest": self.content_digest()}


def _slim_manifest(payload: Mapping) -> dict:
    """The target-resolvable subset of a manifest payload."""
    return {key: payload[key] for key in _ROW_SECTIONS if key in payload}


def _row_from_payload(
    payload: Mapping, *, run_id: str | None = None, windows: Mapping | None = None
) -> RunRow:
    return RunRow(
        run_id=run_id or canonical_digest(dict(payload))[:RUN_ID_LENGTH],
        fingerprint=str(payload.get("fingerprint", "")),
        seed=int(payload.get("seed", 0)),
        created_at=str(payload.get("created_at", "")),
        manifest=_slim_manifest(payload),
        windows=dict(windows) if windows is not None else None,
    )


class QueryFrame:
    """Columnar view over stored runs, keyed ``(fingerprint, run_id,
    created_at)`` and ordered by ``(created_at, run_id)``.

    Key columns are materialized eagerly; target columns are resolved
    lazily (and cached) because the target space is open-ended.
    """

    def __init__(self, rows: Sequence[RunRow]) -> None:
        self.rows = sorted(rows, key=lambda r: (r.created_at, r.run_id))
        self._columns: dict[str, list] = {}
        self._digest: str | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, target: str) -> list:
        """Per-run values for ``target``, row-aligned (cached)."""
        if target not in self._columns:
            parse_target(target)  # fail fast on a malformed selector
            self._columns[target] = [
                resolve_target(row.manifest, row.windows, target)
                for row in self.rows
            ]
        return self._columns[target]

    def filter(
        self, *, fingerprint: str | None = None, limit: int | None = None
    ) -> "QueryFrame":
        """Rows of one config (fingerprint prefix >= 4 chars) and/or the
        newest ``limit`` runs."""
        rows = self.rows
        if fingerprint is not None:
            require(
                len(fingerprint) >= 4,
                f"fingerprint prefix {fingerprint!r} too short (need >= 4 chars)",
            )
            rows = [r for r in rows if r.fingerprint.startswith(fingerprint)]
        if limit is not None:
            require(limit >= 1, f"limit must be >= 1, got {limit}")
            rows = rows[-limit:]
        return QueryFrame(rows)

    def grouped(self) -> dict[str, "QueryFrame"]:
        """One run-ordered sub-frame per config fingerprint.

        Regression detection runs per group: cross-config series mix
        apples and oranges (different scales, different stage sets).
        """
        groups: dict[str, list[RunRow]] = {}
        for row in self.rows:
            groups.setdefault(row.fingerprint, []).append(row)
        return {fp: QueryFrame(rows) for fp, rows in sorted(groups.items())}

    def as_dict(self) -> dict:
        return {"rows": [row.as_dict() for row in self.rows]}

    def digest(self) -> str:
        """Canonical content address of the frame.

        Two constructions over the same store must agree byte-for-byte
        regardless of filesystem enumeration order or index warmth —
        checked in the tests and the query bench.  Combines the rows'
        own content digests (persisted in the query index), so a warm
        frame digest costs O(rows), not a re-canonicalization of every
        stored manifest.
        """
        if self._digest is None:
            self._digest = canonical_digest(
                {"rows": [[row.run_id, row.content_digest()] for row in self.rows]}
            )
        return self._digest


def frame_from_payloads(
    payloads: Sequence[Mapping],
    windows: Sequence[Mapping | None] | None = None,
) -> QueryFrame:
    """A frame over bare manifest payloads (no store required).

    The perf gate and the tests use this to run the regression
    detector over manifests that were never persisted.
    """
    sidecars = list(windows) if windows is not None else [None] * len(payloads)
    require(
        len(sidecars) == len(payloads),
        "windows must align with payloads one-to-one",
    )
    return QueryFrame(
        [
            _row_from_payload(payload, windows=sidecar)
            for payload, sidecar in zip(payloads, sidecars)
        ]
    )


class QueryIndex:
    """The persisted, incrementally refreshed materialization of a store.

    Lives at ``<store root>/query_index.json``: one slim row per stored
    run (:data:`_ROW_SECTIONS` of the manifest plus the window series),
    ordered by ``(created_at, run_id)``.  :meth:`refresh` only loads
    manifests whose ``run_id`` the index has not seen and drops rows
    whose run left the store — the incremental reindex that keeps
    ``repro obs query`` O(new runs), not O(store).
    """

    def __init__(self, store: RunStore) -> None:
        self.store = store

    @property
    def path(self) -> Path:
        return self.store.root / QUERY_INDEX_NAME

    def load_rows(self) -> list[dict] | None:
        """Raw persisted rows, or ``None`` when no index exists yet."""
        if not self.path.is_file():
            return None
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        if payload.get("schema") != QUERY_INDEX_SCHEMA:
            return None  # superseded layout: rebuilt from scratch
        return list(payload.get("rows", []))

    def _build_row(self, entry: Mapping) -> dict:
        payload = self.store.load_payload(entry["run_id"])
        windows = self.store.load_windows(entry["run_id"])
        return _row_from_payload(
            payload, run_id=str(entry["run_id"]), windows=windows
        ).as_dict()

    def refresh(self) -> tuple[int, int]:
        """Bring the index up to date; returns ``(added, dropped)``.

        A no-op refresh (nothing new, nothing gone) never rewrites the
        file, so repeated queries against an unchanged store cost one
        JSON read.
        """
        entries = self.store.entries()
        known = {row["run_id"]: row for row in self.load_rows() or []}
        wanted = [str(entry["run_id"]) for entry in entries]
        added = [e for e in entries if str(e["run_id"]) not in known]
        dropped = set(known) - set(wanted)
        if not added and not dropped and self.path.is_file():
            return (0, 0)
        rows = [
            known[run_id] if run_id in known else None for run_id in wanted
        ]
        for position, entry in enumerate(entries):
            if rows[position] is None:
                rows[position] = self._build_row(entry)
        self._write(rows)
        if added or dropped:
            log.debug(
                "query index refreshed",
                extra={"added": len(added), "dropped": len(dropped)},
            )
        return (len(added), len(dropped))

    def rebuild_rows(self) -> list[dict]:
        """Fresh rows straight from the store, ignoring the persisted file."""
        return [self._build_row(entry) for entry in self.store.entries()]

    def _write(self, rows: Sequence[Mapping]) -> None:
        payload = {"schema": QUERY_INDEX_SCHEMA, "rows": list(rows)}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)


def validate_query_index(root: str | Path) -> list[str]:
    """Errors in a persisted query index; empty list means valid.

    A missing index is valid (it materializes on first query); a stale
    or hand-edited one is not — every row must match a fresh rebuild
    from the stored manifests, row for row.
    """
    store = RunStore(root)
    index = QueryIndex(store)
    persisted = index.load_rows()
    if persisted is None:
        if index.path.is_file():
            return [f"query index {index.path}: unsupported schema"]
        return []
    fresh = index.rebuild_rows()
    errors: list[str] = []
    persisted_ids = [row.get("run_id") for row in persisted]
    fresh_ids = [row["run_id"] for row in fresh]
    for run_id in fresh_ids:
        if run_id not in persisted_ids:
            errors.append(f"query index: stored run {run_id} not indexed (stale)")
    for run_id in persisted_ids:
        if run_id not in fresh_ids:
            errors.append(f"query index: row {run_id} has no stored run (orphaned)")
    by_id = {row["run_id"]: row for row in fresh}
    for row in persisted:
        run_id = row.get("run_id")
        if run_id in by_id and canonical_digest(row) != canonical_digest(
            by_id[run_id]
        ):
            errors.append(
                f"query index: row {run_id} does not match the stored "
                "manifest (index edited or manifest changed in place)"
            )
    return errors


def build_frame(
    store: RunStore,
    *,
    fingerprint: str | None = None,
    limit: int | None = None,
    include: Sequence[str | Path] = (),
    use_index: bool = True,
) -> QueryFrame:
    """Materialize the store (plus ``include`` manifest files) as a frame.

    With ``use_index`` (the default) the persisted :class:`QueryIndex`
    is refreshed incrementally and rows come from it; without it, every
    manifest is loaded directly (what the index validator compares
    against).  ``include`` adds bare manifest files — e.g. a committed
    CI reference — as extra rows; a ``<path>.windows.json`` sidecar
    rides along when present (``reference.json`` pairs with
    ``reference.windows.json``).
    """
    index = QueryIndex(store)
    if use_index and store.entries():
        index.refresh()
        raw = index.load_rows() or []
    else:
        raw = index.rebuild_rows()
    rows = [
        RunRow(
            run_id=str(row["run_id"]),
            fingerprint=str(row["fingerprint"]),
            seed=int(row["seed"]),
            created_at=str(row["created_at"]),
            manifest=row["manifest"],
            windows=row.get("windows"),
            digest=str(row.get("digest", "")),
        )
        for row in raw
    ]
    for ref in include:
        path = Path(ref)
        require(path.is_file(), f"included manifest {path} does not exist")
        payload = json.loads(path.read_text(encoding="utf-8"))
        sidecar = path.with_name(f"{path.stem}.windows.json")
        windows = (
            json.loads(sidecar.read_text(encoding="utf-8"))
            if sidecar.is_file()
            else None
        )
        rows.append(_row_from_payload(payload, windows=windows))
    return QueryFrame(rows).filter(fingerprint=fingerprint, limit=limit)


@dataclass
class QueryResult:
    """One query's rows, per-target aggregates and provenance digest."""

    targets: tuple[str, ...]
    agg: str | None
    rows: list[dict]
    aggregates: dict[str, float | None]
    frame_digest: str

    def as_dict(self) -> dict:
        return {
            "targets": list(self.targets),
            "agg": self.agg,
            "rows": self.rows,
            "aggregates": dict(self.aggregates) if self.agg else {},
            "frame_digest": self.frame_digest,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        """Fixed-width table: one row per run, one column per target."""
        if not self.rows:
            return "query: no stored runs match"
        headers = ["run_id", "fingerprint", "created_at", *self.targets]
        table = [headers]
        for row in self.rows:
            rendered = [
                row["run_id"],
                row["fingerprint"][:12] + "..",
                row["created_at"] or "-",
            ]
            for target in self.targets:
                rendered.append(_render_cell(row["values"][target]))
            table.append(rendered)
        if self.agg:
            footer = [f"{self.agg}", "", ""]
            for target in self.targets:
                footer.append(_render_cell(self.aggregates.get(target)))
            table.append(footer)
        widths = [
            max(len(line[column]) for line in table)
            for column in range(len(headers))
        ]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
            for line in table
        ]
        if self.agg:
            lines.insert(len(lines) - 1, "-" * len(lines[0]))
        return "\n".join(lines)

    def to_openmetrics(self) -> str:
        """OpenMetrics exposition: one gauge sample per (run, target).

        Aggregates land as ``repro_query_aggregate`` samples; the
        mandatory ``# EOF`` terminator closes the exposition.
        """
        lines = ["# TYPE repro_query gauge"]
        for row in self.rows:
            for target in self.targets:
                value = row["values"][target]
                if isinstance(value, list) or value is None:
                    continue
                lines.append(
                    f'repro_query{{run_id="{row["run_id"]}",'
                    f'target="{target}"}} {value:g}'
                )
        if self.agg:
            lines.append("# TYPE repro_query_aggregate gauge")
            for target in self.targets:
                value = self.aggregates.get(target)
                if value is None:
                    continue
                lines.append(
                    f'repro_query_aggregate{{agg="{self.agg}",'
                    f'target="{target}"}} {value:g}'
                )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _render_cell(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, list):
        return "[" + ", ".join(f"{v:g}" for v in value) + "]"
    return f"{value:g}"


def run_query(
    frame: QueryFrame,
    targets: Sequence[str],
    *,
    agg: str | None = None,
    fingerprint: str | None = None,
    limit: int | None = None,
) -> QueryResult:
    """Select ``targets`` over ``frame``; optionally filter and aggregate.

    Scalar targets aggregate across runs; a ``series:`` target is first
    reduced per run (same aggregation over its windows), then across
    runs — so ``--agg p50`` over ``series:events`` answers "the median
    run's median window".
    """
    require(bool(targets), "query needs at least one target")
    if agg is not None:
        aggregate((0.0,), agg)  # fail fast on a malformed aggregation
    frame = frame.filter(fingerprint=fingerprint, limit=limit)
    columns = {target: frame.column(target) for target in targets}
    rows = []
    for position, row in enumerate(frame.rows):
        values = {}
        for target in targets:
            value = columns[target][position]
            if agg is not None and isinstance(value, list):
                value = aggregate(value, agg)
            values[target] = value
        rows.append(
            {
                "run_id": row.run_id,
                "fingerprint": row.fingerprint,
                "seed": row.seed,
                "created_at": row.created_at,
                "values": values,
            }
        )
    aggregates: dict[str, float | None] = {}
    if agg is not None:
        for target in targets:
            aggregates[target] = aggregate(
                [row["values"][target] for row in rows], agg
            )
    return QueryResult(
        targets=tuple(targets),
        agg=agg,
        rows=rows,
        aggregates=aggregates,
        frame_digest=frame.digest(),
    )


# --------------------------------------------------------------------------
# Per-stage cost attribution: profile probes x stage fingerprints.


@dataclass(frozen=True)
class StageCost:
    """One pipeline stage's resource bill in both runs."""

    stage: str
    #: Whether the stage's content-addressed fingerprint changed — i.e.
    #: whether the config delta re-keyed (recomputed) this stage.
    rekeyed: bool
    seconds_a: float | None
    seconds_b: float | None
    cpu_a: float | None = None
    cpu_b: float | None = None
    rss_a: float | None = None
    rss_b: float | None = None

    @property
    def delta_seconds(self) -> float | None:
        if self.seconds_a is None or self.seconds_b is None:
            return None
        return self.seconds_b - self.seconds_a

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "rekeyed": self.rekeyed,
            "seconds_a": self.seconds_a,
            "seconds_b": self.seconds_b,
            "delta_seconds": self.delta_seconds,
            "cpu_a": self.cpu_a,
            "cpu_b": self.cpu_b,
            "rss_a": self.rss_a,
            "rss_b": self.rss_b,
        }


@dataclass
class CostReport:
    """Per-stage cost attribution of one config delta."""

    fingerprint_a: str
    fingerprint_b: str
    #: Dotted config keys whose values differ, key -> (a, b).
    config_delta: dict[str, tuple[object, object]] = field(default_factory=dict)
    stages: list[StageCost] = field(default_factory=list)

    @property
    def rekeyed_stages(self) -> list[StageCost]:
        return [stage for stage in self.stages if stage.rekeyed]

    def attributed_seconds(self) -> float | None:
        """Wall-clock delta summed over the re-keyed stages only.

        This is the headline answer to "what did the config change
        cost": unchanged stages replay (or recompute identically), so
        their drift is machine noise, not the delta's bill.
        """
        deltas = [
            stage.delta_seconds
            for stage in self.rekeyed_stages
            if stage.delta_seconds is not None
        ]
        if not deltas:
            return None
        return sum(deltas)

    def as_dict(self) -> dict:
        return {
            "fingerprint_a": self.fingerprint_a,
            "fingerprint_b": self.fingerprint_b,
            "config_delta": {
                key: list(values) for key, values in sorted(self.config_delta.items())
            },
            "stages": [stage.as_dict() for stage in self.stages],
            "attributed_seconds": self.attributed_seconds(),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        lines = []
        if self.fingerprint_a == self.fingerprint_b:
            lines.append(
                f"same configuration ({self.fingerprint_a[:12]}..): "
                "comparing repeat runs, no delta to attribute"
            )
        elif self.config_delta:
            lines.append("config delta:")
            for key, (a, b) in sorted(self.config_delta.items()):
                lines.append(f"  {key}: {a!r} -> {b!r}")
        else:
            lines.append(
                "config fingerprints differ but no keyed delta found "
                "(seed or schema change)"
            )
        lines.append(
            f"{'stage':<12} {'rekeyed':<8} {'seconds A':>10} {'seconds B':>10} "
            f"{'delta':>9}  extras"
        )
        for stage in self.stages:
            extras = []
            if stage.cpu_a is not None and stage.cpu_b is not None:
                extras.append(f"cpu {stage.cpu_a:.3f}s -> {stage.cpu_b:.3f}s")
            if stage.rss_a is not None and stage.rss_b is not None:
                extras.append(
                    f"rss {stage.rss_a:.0f}KiB -> {stage.rss_b:.0f}KiB"
                )
            delta = stage.delta_seconds
            lines.append(
                f"{stage.stage:<12} {'yes' if stage.rekeyed else '-':<8} "
                f"{_seconds_cell(stage.seconds_a):>10} "
                f"{_seconds_cell(stage.seconds_b):>10} "
                f"{f'{delta:+.3f}s' if delta is not None else 'n/a':>9}  "
                + " ".join(extras)
            )
        attributed = self.attributed_seconds()
        if attributed is not None:
            lines.append(
                f"attributed cost: {attributed:+.3f}s across "
                f"{len(self.rekeyed_stages)} re-keyed stage(s)"
            )
        return "\n".join(line.rstrip() for line in lines)


def _seconds_cell(value: float | None) -> str:
    return f"{value:.3f}s" if value is not None else "n/a"


def flatten_config(config: Mapping, prefix: str = "") -> dict[str, object]:
    """Dotted-key view of a canonicalized config mapping.

    The canonical form wraps dataclasses as ``{"__type__": ...}`` and
    enums as ``{"__enum__": ..., "value": ...}``; both wrappers are
    transparent here so a delta reads ``clustering.threshold`` rather
    than ``clustering.__type__...``.
    """
    flat: dict[str, object] = {}
    for key, value in config.items():
        if key == "__type__":
            continue
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            if "__enum__" in value:
                flat[path] = value.get("value")
            else:
                flat.update(flatten_config(value, prefix=f"{path}."))
        else:
            flat[path] = value
    return flat


def _stage_rows(payload: Mapping) -> dict[str, dict]:
    """Per-stage ``seconds``/profile-attr rows of a manifest payload."""
    rows: dict[str, dict] = {}
    for child in payload.get("span_tree", {}).get("children", ()):
        attributes = child.get("attributes", {})
        rows[str(child.get("name", "?"))] = {
            "seconds": (
                None
                if attributes.get("cache") == "hit"
                else float(child.get("seconds", 0.0))
            ),
            "cpu_seconds": attributes.get("cpu_seconds"),
            "max_rss_kb": attributes.get("max_rss_kb"),
        }
    return rows


def attribute_cost(payload_a: Mapping, payload_b: Mapping) -> CostReport:
    """Join span probes with stage fingerprints: the bill of a config delta.

    ``payload_a`` is the reference manifest, ``payload_b`` the candidate
    (typically the run after a config change).  A stage counts as
    *re-keyed* when its PR-5 ``stage_fingerprint`` differs — exactly the
    stages the incremental engine recomputes for this delta — and only
    re-keyed stages' wall-clock deltas roll into the attributed cost.
    Replayed stages (``cache: hit``) contribute ``n/a`` seconds rather
    than their replay milliseconds.
    """
    fingerprints_a = payload_a.get("stage_fingerprints", {})
    fingerprints_b = payload_b.get("stage_fingerprints", {})
    rows_a = _stage_rows(payload_a)
    rows_b = _stage_rows(payload_b)
    ordered = list(rows_a)
    ordered += [name for name in rows_b if name not in rows_a]
    ordered += [
        name
        for name in sorted(set(fingerprints_a) | set(fingerprints_b))
        if name not in ordered
    ]
    stages = []
    for name in ordered:
        a, b = rows_a.get(name, {}), rows_b.get(name, {})
        known_a, known_b = fingerprints_a.get(name), fingerprints_b.get(name)
        stages.append(
            StageCost(
                stage=name,
                rekeyed=known_a != known_b,
                seconds_a=a.get("seconds"),
                seconds_b=b.get("seconds"),
                cpu_a=a.get("cpu_seconds"),
                cpu_b=b.get("cpu_seconds"),
                rss_a=a.get("max_rss_kb"),
                rss_b=b.get("max_rss_kb"),
            )
        )
    flat_a = flatten_config(payload_a.get("config", {}))
    flat_b = flatten_config(payload_b.get("config", {}))
    delta = {
        key: (flat_a.get(key), flat_b.get(key))
        for key in sorted(set(flat_a) | set(flat_b))
        if flat_a.get(key) != flat_b.get(key)
    }
    return CostReport(
        fingerprint_a=str(payload_a.get("fingerprint", "")),
        fingerprint_b=str(payload_b.get("fingerprint", "")),
        config_delta=delta,
        stages=stages,
    )
