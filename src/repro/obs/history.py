"""The longitudinal run store: append-only, content-addressed manifests.

One scenario run leaves one :class:`~repro.obs.manifest.RunManifest`;
this module is where they accumulate so drift *across* runs becomes
observable.  Layout under the store root (default ``results/runs``,
overridable via ``$REPRO_RUNS_DIR``)::

    results/runs/
      index.json                           # append-only entry list
      <fingerprint>/<run_id>.json          # one manifest per stored run
      <fingerprint>/<run_id>.events.jsonl  # the run's event log, if any
      <fingerprint>/<run_id>.windows.json  # the run's window report, if any

``run_id`` is the first 16 hex chars of the manifest's canonical
content digest (:meth:`RunManifest.content_id`), so the store is
content-addressed: storing the identical manifest twice is a no-op,
and an entry can never be silently overwritten with different content
(:meth:`RunStore.add` refuses).  ``fingerprint`` is the semantic
``(seed, config)`` address the scenario cache also keys on — all runs
of one configuration land in one directory, which is what the
``repro obs history`` time series iterates over.

The index is the only mutable file and is rewritten atomically on each
add; entries are never removed, so the history it records is
append-only by construction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs.log import get_logger
from repro.obs.manifest import RunManifest
from repro.util.validation import require

log = get_logger("obs.history")

#: Environment variable overriding the store root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Index file name under the store root.
INDEX_NAME = "index.json"

#: Index schema version.
INDEX_SCHEMA = 1

#: Hex chars of the manifest content digest used as the run id.
RUN_ID_LENGTH = 16


def default_store_root() -> Path:
    """``$REPRO_RUNS_DIR`` if set, else ``results/runs``."""
    env = os.environ.get(RUNS_DIR_ENV)
    if env:
        return Path(env)
    return Path("results") / "runs"


class RunStore:
    """Append-only store of run manifests, content-addressed by run id."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    def entries(
        self, fingerprint: str | None = None, *, limit: int | None = None
    ) -> list[dict]:
        """Index entries, sorted by ``(created_at, run_id)``.

        The sort makes listings and query frames deterministic across
        filesystems and index rewrite history (insertion order is a
        storage accident; ``created_at`` plus the content-derived run
        id is reproducible).  ``limit`` keeps only the newest N entries
        *after* the fingerprint filter.
        """
        if not self.index_path.is_file():
            return []
        payload = json.loads(self.index_path.read_text(encoding="utf-8"))
        entries = list(payload.get("entries", []))
        if fingerprint is not None:
            entries = [e for e in entries if e.get("fingerprint") == fingerprint]
        entries.sort(
            key=lambda e: (str(e.get("created_at", "")), str(e.get("run_id", "")))
        )
        if limit is not None:
            require(limit >= 1, f"limit must be >= 1, got {limit}")
            entries = entries[-limit:]
        return entries

    def path_for(self, fingerprint: str, run_id: str) -> Path:
        return self.root / fingerprint / f"{run_id}.json"

    def events_path_for(self, fingerprint: str, run_id: str) -> Path:
        """Where the run's ingested event log lives (may not exist)."""
        return self.root / fingerprint / f"{run_id}.events.jsonl"

    def windows_path_for(self, fingerprint: str, run_id: str) -> Path:
        """Where the run's window-report sidecar lives (may not exist)."""
        return self.root / fingerprint / f"{run_id}.windows.json"

    def add(
        self,
        manifest: RunManifest,
        *,
        events_path: str | Path | None = None,
        windows_path: str | Path | None = None,
    ) -> str:
        """Store ``manifest``; returns its run id.

        Content-addressed and append-only: re-adding identical content
        is a no-op, while a run-id collision with *different* content
        (practically impossible, but the guard keeps the store honest)
        is refused rather than overwritten.

        ``events_path`` optionally ingests the run's live event log
        (JSON lines) next to the manifest, so ``repro obs diff`` can
        attribute a divergence to the first diverging *event* rather
        than only the first diverging stage; ``windows_path`` likewise
        ingests the run's window-report sidecar (the per-window
        landscape series ``repro obs health``/``dashboard`` read).
        """
        require(isinstance(manifest, RunManifest), "can only store RunManifest")
        run_id = manifest.content_id()[:RUN_ID_LENGTH]
        path = self.path_for(manifest.fingerprint, run_id)
        already_stored = False
        if path.is_file():
            existing = path.read_text(encoding="utf-8")
            require(
                existing == manifest.to_json() + "\n",
                f"run id collision at {path}: existing content differs",
            )
            log.debug("run already stored", extra={"run_id": run_id})
            already_stored = True
        if not already_stored:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(manifest.to_json() + "\n", encoding="utf-8")
            os.replace(tmp, path)
        has_events = self._ingest_events(manifest.fingerprint, run_id, events_path)
        has_windows = self._ingest_sidecar(
            self.windows_path_for(manifest.fingerprint, run_id), windows_path
        )
        if already_stored:
            return run_id
        self._append_index(
            {
                "run_id": run_id,
                "fingerprint": manifest.fingerprint,
                "seed": manifest.seed,
                "created_at": manifest.created_at,
                "library_version": manifest.library_version,
                "golden_deviations": len(manifest.golden_deviations),
                "events": has_events,
                "windows": has_windows,
                "path": str(path.relative_to(self.root)),
            }
        )
        log.info(
            "run stored",
            extra={"run_id": run_id, "fingerprint": manifest.fingerprint[:12]},
        )
        return run_id

    def _ingest_events(
        self, fingerprint: str, run_id: str, events_path: str | Path | None
    ) -> bool:
        """Copy a run's event log into the store; returns whether one exists."""
        return self._ingest_sidecar(
            self.events_path_for(fingerprint, run_id), events_path
        )

    def _ingest_sidecar(self, target: Path, source: str | Path | None) -> bool:
        """Copy a sidecar file into the store; returns whether one exists."""
        if source is None:
            return target.is_file()
        source = Path(source)
        require(source.is_file(), f"sidecar {source} does not exist")
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(source.read_bytes())
        os.replace(tmp, target)
        return True

    def _append_index(self, entry: dict) -> None:
        entries = self.entries()
        entries.append(entry)
        payload = {"schema": INDEX_SCHEMA, "entries": entries}
        tmp = self.index_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.index_path)

    def resolve(self, ref: str) -> Path:
        """Path of the manifest named by ``ref``.

        ``ref`` may be a filesystem path to a manifest JSON file, a full
        run id, an unambiguous run-id prefix (>= 4 chars), or a
        fingerprint-qualified ``<fingerprint-prefix>/<run-id-prefix>``
        pair — the qualified form disambiguates a run-id prefix shared
        across configurations.
        """
        as_path = Path(ref)
        if as_path.is_file():
            return as_path
        fingerprint, slash, run_ref = ref.rpartition("/")
        if not slash:
            fingerprint = ""
            run_ref = ref
        require(
            len(run_ref) >= 4,
            f"run id prefix {run_ref!r} too short (need >= 4 chars)",
        )
        if fingerprint:
            require(
                len(fingerprint) >= 4,
                f"fingerprint prefix {fingerprint!r} too short (need >= 4 chars)",
            )
        matches = [
            entry
            for entry in self.entries()
            if entry.get("run_id", "").startswith(run_ref)
            and entry.get("fingerprint", "").startswith(fingerprint)
        ]
        require(bool(matches), f"no stored run matches {ref!r} under {self.root}")
        require(
            len(matches) == 1,
            f"ambiguous run ref {ref!r}: matches "
            + ", ".join(sorted(e["run_id"] for e in matches)),
        )
        return self.root / matches[0]["path"]

    def rebuild_index(self) -> int:
        """Regenerate ``index.json`` from the on-disk manifest tree.

        Recovery for a deleted or corrupted index: every
        ``<fingerprint>/<run_id>.json`` under the root is re-read and
        re-indexed.  Each manifest must still live at its content
        address — a file whose canonical digest no longer matches its
        directory/name is refused (the tree was edited in place, and
        silently indexing it would launder the corruption).  Returns
        the number of runs indexed.
        """
        entries: list[dict] = []
        for path in sorted(self.root.glob("*/*.json")):
            if path.name.endswith((".events.jsonl", ".windows.json")):
                continue
            manifest = RunManifest.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
            run_id = manifest.content_id()[:RUN_ID_LENGTH]
            require(
                path.stem == run_id,
                f"stored manifest {path} digests to {run_id}: content no "
                "longer matches its address (edited in place?)",
            )
            require(
                path.parent.name == manifest.fingerprint,
                f"stored manifest {path} carries fingerprint "
                f"{manifest.fingerprint[:12]}..: wrong directory",
            )
            entries.append(
                {
                    "run_id": run_id,
                    "fingerprint": manifest.fingerprint,
                    "seed": manifest.seed,
                    "created_at": manifest.created_at,
                    "library_version": manifest.library_version,
                    "golden_deviations": len(manifest.golden_deviations),
                    "events": self.events_path_for(
                        manifest.fingerprint, run_id
                    ).is_file(),
                    "windows": self.windows_path_for(
                        manifest.fingerprint, run_id
                    ).is_file(),
                    "path": str(path.relative_to(self.root)),
                }
            )
        entries.sort(
            key=lambda e: (str(e.get("created_at", "")), str(e.get("run_id", "")))
        )
        payload = {"schema": INDEX_SCHEMA, "entries": entries}
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.index_path)
        log.info("index rebuilt", extra={"runs": len(entries)})
        return len(entries)

    def load(self, ref: str) -> RunManifest:
        """The stored manifest named by ``ref`` (see :meth:`resolve`)."""
        payload = json.loads(self.resolve(ref).read_text(encoding="utf-8"))
        return RunManifest.from_dict(payload)

    def load_payload(self, ref: str) -> dict:
        """Raw dict form of the stored manifest named by ``ref``."""
        return json.loads(self.resolve(ref).read_text(encoding="utf-8"))

    def load_events(self, ref: str) -> list | None:
        """The ingested event log of the run named by ``ref``, or ``None``.

        Returns the parsed :class:`~repro.obs.events.PipelineEvent`
        list when the run was stored with an event log, ``None`` when
        it was not (older runs, or runs recorded without ``--events``).
        """
        # Deferred import keeps the store usable without the event layer.
        from repro.obs.events import read_events

        manifest_path = self.resolve(ref)
        events_path = manifest_path.with_name(f"{manifest_path.stem}.events.jsonl")
        if not events_path.is_file():
            return None
        return read_events(events_path)

    def load_windows(self, ref: str) -> dict | None:
        """The window-report payload of the run named by ``ref``, or ``None``.

        Works for stored runs *and* bare manifest paths: the sidecar is
        looked up next to the resolved manifest file as
        ``<stem>.windows.json`` (so ``reference.json`` pairs with
        ``reference.windows.json``).
        """
        manifest_path = self.resolve(ref)
        windows_path = manifest_path.with_name(f"{manifest_path.stem}.windows.json")
        if not windows_path.is_file():
            return None
        return json.loads(windows_path.read_text(encoding="utf-8"))

    def manifests(self, fingerprint: str | None = None) -> list[RunManifest]:
        """All stored manifests (optionally one configuration), in order."""
        return [self.load(entry["run_id"]) for entry in self.entries(fingerprint)]

    def render_listing(self, entries: Sequence[Mapping] | None = None) -> str:
        """Human-readable table of stored runs."""
        entries = self.entries() if entries is None else list(entries)
        if not entries:
            return f"run store {self.root}: empty"
        lines = [
            f"run store {self.root}: {len(entries)} run(s)",
            f"{'run_id':<18} {'fingerprint':<14} {'seed':>6} "
            f"{'created_at':<22} {'golden':>6}",
        ]
        for entry in entries:
            deviations = entry.get("golden_deviations", 0)
            lines.append(
                f"{entry.get('run_id', '?'):<18} "
                f"{entry.get('fingerprint', '?')[:12] + '..':<14} "
                f"{entry.get('seed', '?'):>6} "
                f"{entry.get('created_at') or '-':<22} "
                f"{'ok' if not deviations else f'{deviations} dev':>6}"
            )
        return "\n".join(lines)
