"""repro.obs - the observability layer: metrics, traces, logs, manifests.

Zero-dependency instrumentation for the pipeline, off by default and
near-free when off:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry`, exported as deterministic JSON snapshots;
* :mod:`repro.obs.trace` — hierarchical :class:`TraceSpan`s (the
  generalisation of the flat ``StageTimer``), with per-span attributes;
* :mod:`repro.obs.log` — structured logging under the ``repro`` logger
  namespace, console + JSON-lines formatters;
* :mod:`repro.obs.manifest` — the :class:`RunManifest` receipt of a
  scenario run (config fingerprint, span tree, metric snapshot,
  artifact digests);
* :mod:`repro.obs.validate` — the metric-name catalogue and the JSON
  validators CI runs against emitted files.

Instrumented layers read the ambient registry/tracer
(:func:`repro.obs.metrics.active`,
:func:`repro.obs.trace.current_tracer`); orchestrators install real
ones per run.  ``repro.obs`` depends only on :mod:`repro.util`.
"""

from repro.obs.log import configure_logging, get_logger
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import NULL_TRACER, Tracer, TraceSpan, current_tracer, use_tracer

# repro.obs.validate is deliberately NOT imported here: it doubles as the
# ``python -m repro.obs.validate`` CI entry point, and importing it from
# the package __init__ would make runpy warn about the double import.

__all__ = [
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "RunManifest",
    "SIZE_BUCKETS",
    "TraceSpan",
    "Tracer",
    "build_manifest",
    "configure_logging",
    "current_tracer",
    "get_logger",
    "use_tracer",
]
