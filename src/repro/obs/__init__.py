"""repro.obs - the observability layer: metrics, traces, logs, manifests.

Zero-dependency instrumentation for the pipeline, off by default and
near-free when off:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a
  :class:`MetricsRegistry`, exported as deterministic JSON snapshots;
* :mod:`repro.obs.trace` — hierarchical :class:`TraceSpan`s (the
  generalisation of the flat ``StageTimer``), with per-span attributes;
* :mod:`repro.obs.log` — structured logging under the ``repro`` logger
  namespace, console + JSON-lines formatters;
* :mod:`repro.obs.manifest` — the :class:`RunManifest` receipt of a
  scenario run (config fingerprint, span tree, metric snapshot,
  artifact digests);
* :mod:`repro.obs.validate` — the metric-name catalogue and the JSON
  validators CI runs against emitted files and stored runs;
* :mod:`repro.obs.history` — the append-only, content-addressed run
  store (``results/runs``) that turns per-run manifests into a
  longitudinal record;
* :mod:`repro.obs.diff` — cross-run manifest diffs (metric deltas,
  timing bands, digest walks naming the first diverging stage, event
  attribution) and the ``repro obs history`` drift time series;
* :mod:`repro.obs.events` — the live pipeline event stream: a
  schema-versioned, monotonically sequenced :class:`EventBus` with
  in-memory, JSON-lines-file and multiprocessing-queue transports,
  the ``repro obs tail`` replay/follow reader and the ``--progress``
  renderer;
* :mod:`repro.obs.export` — exporters of the recorded telemetry:
  Prometheus/OpenMetrics text expositions, JSON-lines samples, Chrome
  traces;
* :mod:`repro.obs.profile` — opt-in per-span CPU/RSS/GC probes plus
  span-tree exporters: Chrome trace-event JSON and a flamegraph-style
  text view;
* :mod:`repro.obs.windows` — per-window landscape telemetry: the
  :class:`WindowReport` folding a run's artifacts into time-window
  series (attack volume, new samples/patterns, cluster counts and
  churn, cross-view agreement), persisted next to the run store;
* :mod:`repro.obs.health` — the declarative SLO/health-rule engine
  (static thresholds + EWMA z-score anomaly detection over window
  series) behind ``repro obs health``;
* :mod:`repro.obs.dashboard` — the sparkline terminal dashboard behind
  ``repro obs dashboard`` (static render + ``--follow`` off the event
  stream);
* :mod:`repro.obs.query` — the longitudinal analytics frame: every
  stored run materialized into one columnar, digest-checked
  :class:`QueryFrame` (incrementally indexed in ``query_index.json``)
  with ``metric:``/``series:``/``golden:``/``span:`` selectors, the
  ``repro obs query`` engine and the per-stage cost-attribution join
  behind ``repro obs cost``;
* :mod:`repro.obs.regress` — trend-aware regression detection over the
  frame's run-ordered series (trailing-median tolerance bands, EWMA
  z-scores, two-sided Page-Hinkley changepoints) with
  ``(detector, target)``-keyed baseline suppression, behind
  ``repro obs regress`` and the perf gate's detector self-test.

Instrumented layers read the ambient registry/tracer
(:func:`repro.obs.metrics.active`,
:func:`repro.obs.trace.current_tracer`); orchestrators install real
ones per run.  ``repro.obs`` depends only on :mod:`repro.util`.
"""

from repro.obs.diff import ManifestDiff, diff_manifests, render_history
from repro.obs.events import (
    EVENT_KINDS,
    NULL_BUS,
    EventBus,
    PipelineEvent,
    active_bus,
    iter_events,
    read_events,
    use_bus,
)
from repro.obs.dashboard import render_dashboard, sparkline
from repro.obs.export import (
    export_payload,
    jsonl_text,
    openmetrics_text,
    prometheus_text,
)
from repro.obs.health import (
    DEFAULT_RULES,
    HealthFinding,
    HealthReport,
    HealthRule,
    evaluate_health,
    new_findings,
)
from repro.obs.history import RunStore
from repro.obs.log import configure_logging, get_logger
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import chrome_trace, flame_view, write_chrome_trace
from repro.obs.query import (
    CostReport,
    QueryFrame,
    QueryIndex,
    QueryResult,
    attribute_cost,
    build_frame,
    frame_from_payloads,
    run_query,
)
from repro.obs.regress import (
    RegressionFinding,
    RegressionReport,
    RegressRule,
    run_regression,
)
from repro.obs.trace import NULL_TRACER, Tracer, TraceSpan, current_tracer, use_tracer
from repro.obs.windows import WINDOW_SERIES, WindowReport, build_window_report

# repro.obs.validate is deliberately NOT imported here: it doubles as the
# ``python -m repro.obs.validate`` CI entry point, and importing it from
# the package __init__ would make runpy warn about the double import.

__all__ = [
    "CostReport",
    "DEFAULT_RULES",
    "EVENT_KINDS",
    "EventBus",
    "HealthFinding",
    "HealthReport",
    "HealthRule",
    "LATENCY_BUCKETS",
    "ManifestDiff",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_BUS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PipelineEvent",
    "QueryFrame",
    "QueryIndex",
    "QueryResult",
    "RegressRule",
    "RegressionFinding",
    "RegressionReport",
    "RunManifest",
    "RunStore",
    "SIZE_BUCKETS",
    "TraceSpan",
    "Tracer",
    "WINDOW_SERIES",
    "WindowReport",
    "active_bus",
    "attribute_cost",
    "build_frame",
    "build_manifest",
    "build_window_report",
    "chrome_trace",
    "configure_logging",
    "current_tracer",
    "diff_manifests",
    "evaluate_health",
    "export_payload",
    "flame_view",
    "frame_from_payloads",
    "get_logger",
    "iter_events",
    "jsonl_text",
    "new_findings",
    "openmetrics_text",
    "prometheus_text",
    "read_events",
    "render_dashboard",
    "render_history",
    "run_query",
    "run_regression",
    "sparkline",
    "use_bus",
    "write_chrome_trace",
]
