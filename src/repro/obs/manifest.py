"""Per-run manifests: what was run, what came out, how to compare runs.

A :class:`RunManifest` is the machine-readable receipt of one scenario
run: the semantic config fingerprint (the same content address the
scenario cache keys on), the seed, the library version, the full trace
span tree, a metrics snapshot, SHA-256 digests of the run's key
artifacts, the wall-clock ``created_at`` stamp (from the injectable
:mod:`repro.util.clock`, so tests pin it) and the run's own
golden-headline deviations.  Two runs of the same ``(seed, config)``
must agree on ``fingerprint`` and ``artifact_digests`` byte-for-byte on
any backend; only the span durations, latency histograms and
``created_at`` may differ.  That makes the manifest the cheap
cross-machine regression check: diff the digest block, not the gigabyte
of artifacts.

Stage-producing spans in the tree additionally carry an
``output_digest`` attribute (:data:`STAGE_ARTIFACTS` names the mapping)
so a cross-run diff can *walk the span trees* and name the first stage
whose output diverged — see :mod:`repro.obs.diff`.

The builder only reads public run attributes (duck-typed), keeping
``repro.obs`` dependent on :mod:`repro.util` alone; the one sanctioned
exception is the deferred import of the golden-headline check from
:mod:`repro.experiments.regression` inside :func:`build_manifest`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.util.canonical import canonical_digest, canonicalize
from repro.util.clock import timestamp
from repro.util.validation import require

#: Manifest schema version; bump on incompatible layout changes.
#: 2: added ``created_at`` (injectable clock) and ``golden_deviations``.
#: 3: added ``event_summary`` (per-kind counts of the run's live event
#:    stream, when one was recorded; ``{}`` otherwise).
#: 4: added ``stage_fingerprints`` (per-stage content addresses of the
#:    incremental stage DAG) and the per-span ``cache`` attribute
#:    (``hit``/``miss``/``off``) on pipeline-stage spans.
#: 5: added ``health_summary`` (per-severity finding counts of the
#:    run's SLO/health evaluation — see :mod:`repro.obs.health`).
#: 6: added ``event_drops`` (per-transport, per-kind counts of events
#:    dropped by bounded transports — ring eviction, file rotation);
#:    the metrics snapshot inside moved to schema 2 (sketches and
#:    watermarks sections).
MANIFEST_SCHEMA = 6

#: Schemas :meth:`RunManifest.from_dict` still reads (stored runs from
#: earlier layouts stay loadable; missing fields take their defaults).
SUPPORTED_MANIFEST_SCHEMAS = (1, 2, 3, 4, 5, 6)

#: Which span (by name) produced which digested artifact — the walk
#: order of the cross-run digest diff.  ``headline`` summarises the
#: whole run and is attributed to the root span.
STAGE_ARTIFACTS: dict[str, str] = {
    "observe": "dataset.events",
    "epm": "epm.clusters",
    "bcluster": "bclusters.assignment",
}


@dataclass
class RunManifest:
    """The JSON-exportable record of one scenario run."""

    fingerprint: str
    seed: int
    config: dict
    library_version: str
    span_tree: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    artifact_digests: dict[str, str] = field(default_factory=dict)
    created_at: str = ""
    golden_deviations: list[str] = field(default_factory=list)
    #: Per-kind event counts of the run's live stream (schema >= 3).
    #: Cross-checked against the span tree by ``repro obs validate``:
    #: every non-root span must have produced one ``stage.finish``.
    event_summary: dict[str, int] = field(default_factory=dict)
    #: Stage name -> content-addressed fingerprint of the incremental
    #: stage DAG (schema >= 4).  Two manifests agreeing on a stage's
    #: fingerprint are replayable from the same stage-store artifact.
    stage_fingerprints: dict[str, str] = field(default_factory=dict)
    #: Per-severity finding counts of the run's health evaluation
    #: (schema >= 5) — :meth:`repro.obs.health.HealthReport.summary`.
    #: The full findings live on the event stream (``health.finding``);
    #: the manifest keeps the roll-up so ``obs diff``/CI gates can spot
    #: a run going unhealthy without replaying the stream.
    health_summary: dict[str, int] = field(default_factory=dict)
    #: Per-transport, per-kind counts of events a bounded transport
    #: dropped during the run (schema >= 6): ``{"ring": {"chunk.finish":
    #: 12}}``.  The drop-accounting invariant ``repro obs validate``
    #: cross-checks is *kept + dropped >= claimed* per kind — overflow
    #: may lose events from a sink, never from the accounting.
    event_drops: dict[str, dict[str, int]] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    def as_dict(self) -> dict:
        """Plain-dict form (the JSON layout)."""
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "config": self.config,
            "library_version": self.library_version,
            "created_at": self.created_at,
            "span_tree": self.span_tree,
            "metrics": self.metrics,
            "artifact_digests": dict(sorted(self.artifact_digests.items())),
            "golden_deviations": list(self.golden_deviations),
            "event_summary": dict(sorted(self.event_summary.items())),
            "stage_fingerprints": dict(sorted(self.stage_fingerprints.items())),
            "health_summary": dict(sorted(self.health_summary.items())),
            "event_drops": {
                transport: dict(sorted(kinds.items()))
                for transport, kinds in sorted(self.event_drops.items())
            },
        }

    def to_json(self) -> str:
        """Deterministic JSON encoding (sorted keys)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def content_id(self) -> str:
        """Content address of this manifest (what the run store keys on)."""
        return canonical_digest(self.as_dict())

    def write(self, path: str | Path) -> Path:
        """Persist the manifest as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        """Rebuild a manifest from its :meth:`as_dict` form."""
        require(
            payload.get("schema") in SUPPORTED_MANIFEST_SCHEMAS,
            f"unsupported manifest schema {payload.get('schema')!r}",
        )
        return cls(
            fingerprint=payload["fingerprint"],
            seed=payload["seed"],
            config=dict(payload["config"]),
            library_version=payload["library_version"],
            span_tree=dict(payload.get("span_tree", {})),
            metrics=dict(payload.get("metrics", {})),
            artifact_digests=dict(payload.get("artifact_digests", {})),
            created_at=str(payload.get("created_at", "")),
            golden_deviations=[str(d) for d in payload.get("golden_deviations", [])],
            event_summary={
                str(kind): int(count)
                for kind, count in dict(payload.get("event_summary", {})).items()
            },
            stage_fingerprints={
                str(stage): str(fingerprint)
                for stage, fingerprint in dict(
                    payload.get("stage_fingerprints", {})
                ).items()
            },
            health_summary={
                str(severity): int(count)
                for severity, count in dict(
                    payload.get("health_summary", {})
                ).items()
            },
            event_drops={
                str(transport): {
                    str(kind): int(count) for kind, count in dict(kinds).items()
                }
                for transport, kinds in dict(payload.get("event_drops", {})).items()
            },
            schema=int(payload["schema"]),
        )


def artifact_digests(run) -> dict[str, str]:
    """SHA-256 digests of the run's key artifacts, deterministic per seed.

    Digested content is reduced through
    :func:`repro.util.canonical.canonicalize`, so the digests are pure
    functions of the artifacts — never of wall-clock state, dict
    iteration order or the executor backend.
    """
    events = [
        [
            event.event_id,
            event.timestamp,
            int(event.source),
            int(event.sensor),
            event.malware.md5 if event.malware is not None else None,
        ]
        for event in run.dataset.events
    ]
    epm_clusters = {
        dimension.value: clustering.sizes()
        for dimension, clustering in run.epm.dimensions.items()
    }
    return {
        "dataset.events": canonical_digest(events),
        "epm.clusters": canonical_digest(epm_clusters),
        "bclusters.assignment": canonical_digest(run.bclusters.assignment),
        "headline": canonical_digest(run.headline()),
    }


def annotate_stage_digests(trace, digests: Mapping[str, str]) -> None:
    """Attach each artifact digest to the span that produced it.

    Mutates the live :class:`~repro.obs.trace.TraceSpan` tree per
    :data:`STAGE_ARTIFACTS` (the root span gets the ``headline``
    digest), so the exported ``span_tree`` carries enough information
    for a cross-run diff to name the first diverging stage.
    """
    if trace is None:
        return
    if "headline" in digests:
        trace.set(output_digest=digests["headline"])
    for stage, artifact in STAGE_ARTIFACTS.items():
        if artifact not in digests:
            continue
        span = trace.find(stage)
        if span is not None:
            span.set(output_digest=digests[artifact])


def build_manifest(
    run,
    *,
    fingerprint: str,
    events: Mapping[str, int] | None = None,
    stages: Mapping[str, str] | None = None,
    health: Mapping[str, int] | None = None,
    event_drops: Mapping[str, Mapping[str, int]] | None = None,
) -> RunManifest:
    """Assemble the manifest of a finished scenario run.

    ``fingerprint`` is supplied by the caller (the scenario layer owns
    the fingerprint function) so this module stays independent of
    :mod:`repro.experiments`; ``stages`` is the matching per-stage
    fingerprint map of the incremental stage DAG.  ``events`` is the
    per-kind count summary of the run's live event stream
    (``EventBus.summary()``) when one was recorded; ``health`` the
    per-severity summary of the run's health evaluation
    (``HealthReport.summary()``); ``event_drops`` the per-transport,
    per-kind drop accounting of any bounded transports
    (``EventBus.drop_counts()``).  The golden-headline check is the one
    deliberate upward reference — deferred and optional, so the obs
    layer still imports standalone.
    """
    import repro

    digests = artifact_digests(run)
    annotate_stage_digests(run.trace, digests)
    try:
        from repro.experiments.regression import check_headline
    except ImportError:  # pragma: no cover - experiments layer absent
        golden_deviations: list[str] = []
    else:
        golden_deviations = check_headline(run.headline())
    return RunManifest(
        fingerprint=fingerprint,
        seed=run.seed,
        config=canonicalize(run.config),
        library_version=repro.__version__,
        span_tree=run.trace.export() if run.trace is not None else {},
        metrics=run.metrics.as_dict() if run.metrics is not None else {},
        artifact_digests=digests,
        created_at=timestamp(),
        golden_deviations=golden_deviations,
        event_summary=dict(events) if events else {},
        stage_fingerprints=dict(stages) if stages else {},
        health_summary=dict(health) if health else {},
        event_drops={
            str(transport): dict(kinds)
            for transport, kinds in dict(event_drops or {}).items()
        },
    )
