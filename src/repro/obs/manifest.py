"""Per-run manifests: what was run, what came out, how to compare runs.

A :class:`RunManifest` is the machine-readable receipt of one scenario
run: the semantic config fingerprint (the same content address the
scenario cache keys on), the seed, the library version, the full trace
span tree, a metrics snapshot, and SHA-256 digests of the run's key
artifacts.  Two runs of the same ``(seed, config)`` must agree on
``fingerprint`` and ``artifact_digests`` byte-for-byte on any backend;
only the span durations and latency histograms may differ.  That makes
the manifest the cheap cross-machine regression check: diff the digest
block, not the gigabyte of artifacts.

The builder only reads public run attributes (duck-typed), keeping
``repro.obs`` dependent on :mod:`repro.util` alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.util.canonical import canonical_digest, canonicalize
from repro.util.validation import require

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_SCHEMA = 1


@dataclass
class RunManifest:
    """The JSON-exportable record of one scenario run."""

    fingerprint: str
    seed: int
    config: dict
    library_version: str
    span_tree: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    artifact_digests: dict[str, str] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    def as_dict(self) -> dict:
        """Plain-dict form (the JSON layout)."""
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "config": self.config,
            "library_version": self.library_version,
            "span_tree": self.span_tree,
            "metrics": self.metrics,
            "artifact_digests": dict(sorted(self.artifact_digests.items())),
        }

    def to_json(self) -> str:
        """Deterministic JSON encoding (sorted keys)."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    def write(self, path: str | Path) -> Path:
        """Persist the manifest as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        """Rebuild a manifest from its :meth:`as_dict` form."""
        require(
            payload.get("schema") == MANIFEST_SCHEMA,
            f"unsupported manifest schema {payload.get('schema')!r}",
        )
        return cls(
            fingerprint=payload["fingerprint"],
            seed=payload["seed"],
            config=dict(payload["config"]),
            library_version=payload["library_version"],
            span_tree=dict(payload.get("span_tree", {})),
            metrics=dict(payload.get("metrics", {})),
            artifact_digests=dict(payload.get("artifact_digests", {})),
        )


def artifact_digests(run) -> dict[str, str]:
    """SHA-256 digests of the run's key artifacts, deterministic per seed.

    Digested content is reduced through
    :func:`repro.util.canonical.canonicalize`, so the digests are pure
    functions of the artifacts — never of wall-clock state, dict
    iteration order or the executor backend.
    """
    events = [
        [
            event.event_id,
            event.timestamp,
            int(event.source),
            int(event.sensor),
            event.malware.md5 if event.malware is not None else None,
        ]
        for event in run.dataset.events
    ]
    epm_clusters = {
        dimension.value: clustering.sizes()
        for dimension, clustering in run.epm.dimensions.items()
    }
    return {
        "dataset.events": canonical_digest(events),
        "epm.clusters": canonical_digest(epm_clusters),
        "bclusters.assignment": canonical_digest(run.bclusters.assignment),
        "headline": canonical_digest(run.headline()),
    }


def build_manifest(run, *, fingerprint: str) -> RunManifest:
    """Assemble the manifest of a finished scenario run.

    ``fingerprint`` is supplied by the caller (the scenario layer owns
    the fingerprint function) so this module stays independent of
    :mod:`repro.experiments`.
    """
    import repro

    return RunManifest(
        fingerprint=fingerprint,
        seed=run.seed,
        config=canonicalize(run.config),
        library_version=repro.__version__,
        span_tree=run.trace.export() if run.trace is not None else {},
        metrics=run.metrics.as_dict() if run.metrics is not None else {},
        artifact_digests=artifact_digests(run),
    )
