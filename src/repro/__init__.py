"""repro - reproduction of "Exploiting diverse observation perspectives
to get insights on the malware landscape" (Leita, Bayer, Kirda, DSN 2010).

The package rebuilds the paper's full stack:

* :mod:`repro.core` - EPM clustering, the paper's contribution,
* :mod:`repro.egpm` - the EGPM attack model and the SGNET dataset store,
* :mod:`repro.honeypot` - the SGNET deployment (ScriptGen FSM learning,
  Argos-style oracle, Nepenthes-style shellcode handling),
* :mod:`repro.sandbox` - Anubis-style dynamic analysis and the scalable
  LSH behaviour clustering (B-clusters),
* :mod:`repro.enrich` - VirusTotal-style AV labelling and the
  information-enrichment pipeline,
* :mod:`repro.malware`, :mod:`repro.peformat`, :mod:`repro.net` - the
  synthetic malware landscape standing in for real-world traffic,
* :mod:`repro.analysis` - the combined-perspective analyses of SS4
  (cluster relations, anomaly detection, propagation context, C&C
  correlation),
* :mod:`repro.experiments` - the paper-scale scenario and one driver per
  table/figure.

Quickstart::

    from repro.experiments import PaperScenario

    scenario = PaperScenario(seed=2010)
    run = scenario.run()
    print(run.epm.counts(), run.bclusters.n_clusters)
"""

__version__ = "1.0.0"

from repro.core import EPMClustering, EPMResult, InvariantPolicy
from repro.egpm import AttackEvent, SGNetDataset
from repro.sandbox import BehaviorClustering, ClusteringConfig

__all__ = [
    "AttackEvent",
    "BehaviorClustering",
    "ClusteringConfig",
    "EPMClustering",
    "EPMResult",
    "InvariantPolicy",
    "SGNetDataset",
    "__version__",
]
