"""The enrichment orchestrator: dataset + services -> enriched dataset.

For every distinct collected binary the pipeline (a) obtains the AV
verdict panel from the VirusTotal simulation and (b) submits executable
samples to the Anubis service at their collection time.  Results land in
each :class:`~repro.egpm.events.SampleRecord`'s ``enrichment`` mapping
under the keys ``'av_labels'`` and ``'anubis'``.
"""

from __future__ import annotations

from repro.egpm.dataset import SGNetDataset
from repro.enrich.virustotal import VirusTotalService
from repro.obs import metrics as obs_metrics
from repro.obs.trace import current_tracer
from repro.sandbox.anubis import AnubisService
from repro.util.parallel import Executor


class EnrichmentPipeline:
    """Couples a dataset with the external analysis services."""

    def __init__(self, anubis: AnubisService, virustotal: VirusTotalService) -> None:
        self.anubis = anubis
        self.virustotal = virustotal
        self.n_enriched = 0
        self.n_executed = 0
        self.n_not_executable = 0

    def enrich(self, dataset: SGNetDataset, *, executor: Executor | None = None) -> None:
        """Enrich every sample record in ``dataset`` in place.

        Corrupted binaries (truncated downloads) are scanned by the AV
        panel but cannot be executed — reproducing the paper's
        6353-collected vs 5165-behaviourally-analysed gap.

        Sandbox executions are batched through ``executor`` (run seeds
        derive from MD5s, so results are order-independent); the AV scan
        and record bookkeeping stay serial, preserving the exact report
        insertion order and counters of a sequential run.
        """
        before = self.stats()
        tracer = current_tracer()
        executable = []
        with tracer.span("enrich.av_scan"):
            for record in dataset.samples.values():
                if record.ground_truth is not None:
                    record.enrichment["av_labels"] = self.virustotal.scan(
                        record.md5, record.ground_truth
                    )
                if record.observable.corrupted or record.behavior_handle is None:
                    self.n_not_executable += 1
                else:
                    executable.append(record)
                self.n_enriched += 1
        with tracer.span("enrich.sandbox_batch") as span:
            reports = self.anubis.submit_batch(
                [(r.md5, r.behavior_handle, r.first_seen) for r in executable],
                executor=executor,
            )
            for record, report in zip(executable, reports):
                record.enrichment["anubis"] = report
                self.n_executed += 1
            span.set(submitted=len(executable))
        registry = obs_metrics.active()
        after = self.stats()
        registry.counter("enrich.samples_enriched").inc(
            after["enriched"] - before["enriched"]
        )
        registry.counter("enrich.samples_executed").inc(
            after["executed"] - before["executed"]
        )
        registry.counter("enrich.samples_not_executable").inc(
            after["not_executable"] - before["not_executable"]
        )

    def stats(self) -> dict[str, int]:
        """Counter snapshot for reporting."""
        return {
            "enriched": self.n_enriched,
            "executed": self.n_executed,
            "not_executable": self.n_not_executable,
        }
