"""The enrichment orchestrator: dataset + services -> enriched dataset.

For every distinct collected binary the pipeline (a) obtains the AV
verdict panel from the VirusTotal simulation and (b) submits executable
samples to the Anubis service at their collection time.  Results land in
each :class:`~repro.egpm.events.SampleRecord`'s ``enrichment`` mapping
under the keys ``'av_labels'`` and ``'anubis'``.
"""

from __future__ import annotations

from repro.egpm.dataset import SGNetDataset
from repro.enrich.virustotal import VirusTotalService
from repro.sandbox.anubis import AnubisService


class EnrichmentPipeline:
    """Couples a dataset with the external analysis services."""

    def __init__(self, anubis: AnubisService, virustotal: VirusTotalService) -> None:
        self.anubis = anubis
        self.virustotal = virustotal
        self.n_enriched = 0
        self.n_executed = 0
        self.n_not_executable = 0

    def enrich(self, dataset: SGNetDataset) -> None:
        """Enrich every sample record in ``dataset`` in place.

        Corrupted binaries (truncated downloads) are scanned by the AV
        panel but cannot be executed — reproducing the paper's
        6353-collected vs 5165-behaviourally-analysed gap.
        """
        for record in dataset.samples.values():
            if record.ground_truth is not None:
                record.enrichment["av_labels"] = self.virustotal.scan(
                    record.md5, record.ground_truth
                )
            if record.observable.corrupted or record.behavior_handle is None:
                self.n_not_executable += 1
            else:
                report = self.anubis.submit(
                    record.md5, record.behavior_handle, time=record.first_seen
                )
                record.enrichment["anubis"] = report
                self.n_executed += 1
            self.n_enriched += 1

    def stats(self) -> dict[str, int]:
        """Counter snapshot for reporting."""
        return {
            "enriched": self.n_enriched,
            "executed": self.n_executed,
            "not_executable": self.n_not_executable,
        }
