"""Information enrichment: the SGNET metadata pipeline.

Every sample collected by the deployment is automatically pushed to two
external services — VirusTotal (multi-engine AV labels) and Anubis
(behavioural analysis) — and the results are folded back into the
dataset (Leita & Dacier, "SGNET: Implementation Insights").  This
package reproduces that loop with a simulated multi-engine AV
(:mod:`repro.enrich.virustotal`, including realistic vendor aliasing:
the same worm is "Allaple" to one engine and "Rahack" to another) and
the :class:`~repro.sandbox.anubis.AnubisService` facade.
"""

from repro.enrich.virustotal import AVEngine, VirusTotalService, default_engines
from repro.enrich.pipeline import EnrichmentPipeline

__all__ = [
    "AVEngine",
    "EnrichmentPipeline",
    "VirusTotalService",
    "default_engines",
]
