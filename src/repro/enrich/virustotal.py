"""Simulated VirusTotal: multi-engine AV scanning with label noise.

Real AV labels are noisy in three well-documented ways the paper (and
its reference [7]) leans on: engines use *different family names* for
the same code (Allaple vs Rahack), they group variants under *suffix
letters* inconsistently, and they sometimes return only a *generic*
label or miss a sample entirely.  The simulation reproduces all three,
deterministically per (engine, sample) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.egpm.events import GroundTruth
from repro.util.hashing import stable_hash64
from repro.util.rng import spawn_rng
from repro.util.validation import require, require_probability

_GENERIC_LABELS = ("Trojan.Generic", "W32.Malware.Gen", "Suspicious.Heuristic")


@lru_cache(maxsize=4096)
def _suffix_letter(index: int) -> str:
    """Variant index -> AV suffix letter sequence (A..Z, AA..)."""
    require(index >= 0, "variant index must be >= 0")
    letters = ""
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, 26)
        letters = chr(ord("A") + rem) + letters
    return letters


@dataclass(frozen=True)
class AVEngine:
    """One scanning engine's naming behaviour.

    ``family_aliases`` maps ground-truth family names to this vendor's
    name for the family; families without an alias get a mechanical
    ``W32.<Family>`` fallback.  ``variant_granularity`` controls how many
    real variants share one suffix letter (vendors' signatures are
    coarser than the true patch lineage).
    """

    name: str
    detection_rate: float = 0.95
    generic_rate: float = 0.05
    variant_granularity: int = 4
    family_aliases: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_probability(self.detection_rate, "detection_rate")
        require_probability(self.generic_rate, "generic_rate")
        require(self.variant_granularity >= 1, "variant_granularity must be >= 1")

    def label(self, md5: str, truth: GroundTruth) -> str | None:
        """Deterministic label (or miss = ``None``) for one sample."""
        rng = spawn_rng(stable_hash64(md5, salt=self.name), "av-label")
        if rng.random() >= self.detection_rate:
            return None
        if rng.random() < self.generic_rate:
            return rng.choice(_GENERIC_LABELS)
        alias = self.family_aliases.get(
            truth.family, "W32." + truth.family.replace("_", "").capitalize()
        )
        variant_index = _variant_index(truth.variant)
        suffix = _suffix_letter(variant_index // self.variant_granularity)
        return f"{alias}.{suffix}"


@lru_cache(maxsize=4096)
def _variant_index(variant: str) -> int:
    digits = "".join(ch for ch in variant if ch.isdigit())
    return int(digits) if digits else 0


def default_engines() -> list[AVEngine]:
    """A realistic engine panel with Allaple/Rahack-style aliasing."""
    return [
        AVEngine(
            name="PopularAV",
            detection_rate=0.97,
            generic_rate=0.03,
            variant_granularity=3,
            family_aliases={"allaple": "W32.Rahack"},
        ),
        AVEngine(
            name="EuroAV",
            detection_rate=0.94,
            generic_rate=0.06,
            variant_granularity=5,
            family_aliases={"allaple": "Net-Worm.Allaple"},
        ),
        AVEngine(
            name="HeurAV",
            detection_rate=0.90,
            generic_rate=0.18,
            variant_granularity=8,
            family_aliases={"allaple": "Worm/Allaple"},
        ),
        AVEngine(
            name="SignatureAV",
            detection_rate=0.88,
            generic_rate=0.02,
            variant_granularity=2,
            family_aliases={"allaple": "W32/Rahack.worm"},
        ),
    ]


class VirusTotalService:
    """Scans samples against a panel of engines and caches verdicts."""

    def __init__(self, engines: list[AVEngine] | None = None) -> None:
        self.engines = engines if engines is not None else default_engines()
        require(len(self.engines) > 0, "need at least one engine")
        self._cache: dict[str, dict[str, str | None]] = {}

    def scan(self, md5: str, truth: GroundTruth) -> dict[str, str | None]:
        """Engine name -> label (``None`` = not detected)."""
        cached = self._cache.get(md5)
        if cached is not None:
            return cached
        verdicts = {engine.name: engine.label(md5, truth) for engine in self.engines}
        self._cache[md5] = verdicts
        return verdicts

    def detection_count(self, md5: str) -> int:
        """How many engines detected a previously scanned sample."""
        verdicts = self._cache.get(md5)
        require(verdicts is not None, f"sample {md5} was never scanned")
        return sum(1 for label in verdicts.values() if label is not None)

    @property
    def n_scanned(self) -> int:
        """Number of distinct samples scanned."""
        return len(self._cache)
