"""Command-line front-end: regenerate any experiment from a shell.

::

    python -m repro headline            # §4.1 counts, paper vs measured
    python -m repro table1              # invariant counts per feature
    python -m repro figure3             # E/P/M/B relation graph
    python -m repro anomalies           # §4.2 singletons + healing
    python -m repro figure4             # AV names + EP coordinates
    python -m repro figure5             # propagation context, worm vs bot
    python -m repro table2              # IRC C&C correlation
    python -m repro mcluster13          # the per-source polymorphism case
    python -m repro evasion             # EPM vs a repacking engine
    python -m repro run --out events.jsonl   # dump the enriched dataset

All commands accept ``--seed`` (default 2010), ``--scale`` (default 1.0)
and ``--weeks`` (default 74), plus ``--executor {serial,thread,process}``
and ``--jobs N`` to pick the parallel backend, ``--columnar`` /
``--no-columnar`` to toggle the batch kernels, ``--shards N`` to stream
observation through N time-slice shards, ``--timings`` to print
the per-stage trace tree, and ``--cache`` / ``--no-cache`` to reuse a
previously built scenario from the artifact cache.  With ``--cache``
the per-stage artifact store is on too (``--no-cache-stages`` turns it
off): a whole-run miss replays every pipeline stage whose
content-addressed fingerprint is already stored and recomputes only
from the first invalidated stage down.

Observability flags: ``--log-level {debug,info,warning,error}`` and
``--log-json PATH`` control the structured logger, ``--metrics-out
PATH`` writes the session's metric snapshot as JSON, ``--manifest``
writes the run's manifest (fingerprint, span tree, artifact digests) to
``manifest.json``, ``--store-run`` appends the manifest to the
longitudinal run store (``results/runs`` or ``$REPRO_RUNS_DIR``),
``--profile`` attaches per-span CPU/RSS/GC probes to the trace,
``--events PATH`` streams live pipeline events (stage opens/closes,
chunk completions, cache interactions, cluster milestones) to a
tailable JSON-lines file, and ``--progress`` renders live per-stage
progress with an ETA to stderr.

The artifact caches live under ``repro cache``::

    python -m repro cache ls                    # stored artifacts, both layers
    python -m repro cache gc                    # drop stale stage artifacts
    python -m repro cache explain --weeks 8     # hit/miss forecast + causes

The longitudinal toolkit lives under ``repro obs``::

    python -m repro obs list                    # stored runs
    python -m repro obs diff A B                # cross-run regression diff
    python -m repro obs history lsh.clusters    # drift time series
    python -m repro obs tail events.jsonl --follow  # live event stream
    python -m repro obs export RUN --format prometheus
    python -m repro obs trace RUN --chrome t.json   # Perfetto export
    python -m repro obs health RUN                  # SLO/anomaly report
    python -m repro obs dashboard RUN               # sparkline dashboard
    python -m repro obs query 'metric:lsh.clusters' --agg p50  # cross-run analytics
    python -m repro obs regress --fail-on critical  # trend-aware regression scan
    python -m repro obs cost A B                    # per-stage cost attribution
    python -m repro obs validate --runs results/runs
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Sequence

from repro.experiments.drivers import (
    anomaly_report,
    figure3,
    figure4,
    figure5,
    headline,
    mcluster13_report,
    table1,
    table2,
)
from repro.experiments.scenario import PaperScenario, ScenarioConfig, ScenarioRun
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.util.parallel import BACKENDS

log = get_logger("cli")

_DRIVERS: dict[str, Callable[[ScenarioRun], tuple[object, str]]] = {
    "headline": headline,
    "table1": table1,
    "figure3": figure3,
    "anomalies": anomaly_report,
    "figure4": figure4,
    "figure5": figure5,
    "table2": table2,
    "mcluster13": mcluster13_report,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Leita/Bayer/Kirda, DSN 2010",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=2010)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--weeks", type=int, default=74)
        p.add_argument(
            "--executor",
            choices=BACKENDS,
            default="serial",
            help="parallel backend for the pipeline's concurrent stages",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=0,
            help="worker count for parallel backends (0 = one per core)",
        )
        p.add_argument(
            "--columnar",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="run the batch (columnar/vectorized) kernels for "
            "invariant discovery and LSH clustering; --no-columnar "
            "falls back to the scalar reference paths (bit-identical "
            "artifacts either way)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=0,
            metavar="N",
            help="stream observation through N time-slice shards, "
            "dropping each shard's binaries before building the next "
            "(0 = unsharded; the dataset is bit-identical for any N)",
        )
        p.add_argument(
            "--windows",
            type=int,
            default=4,
            metavar="WEEKS",
            help="fold per-window landscape telemetry over WEEKS-wide "
            "time windows after the pipeline (0 = off; artifacts are "
            "unaffected either way)",
        )
        p.add_argument(
            "--timings",
            action="store_true",
            help="print the per-stage trace tree to stderr after the run",
        )
        p.add_argument(
            "--cache",
            action=argparse.BooleanOptionalAction,
            default=False,
            help="load/store the built scenario in the artifact cache "
            "($REPRO_CACHE_DIR or ~/.cache/repro/scenarios)",
        )
        p.add_argument(
            "--cache-stages",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="with --cache: also replay/store per-stage artifacts, so "
            "a config change recomputes only the invalidated stages "
            "(--no-cache-stages limits caching to whole runs)",
        )
        p.add_argument(
            "--log-level",
            choices=("debug", "info", "warning", "error"),
            default="info",
            help="console log verbosity (structured logger on stderr)",
        )
        p.add_argument(
            "--log-json",
            metavar="PATH",
            default=None,
            help="also append one JSON log record per line to PATH",
        )
        p.add_argument(
            "--metrics-out",
            metavar="PATH",
            default=None,
            help="write the session's metrics snapshot as JSON to PATH",
        )
        p.add_argument(
            "--manifest",
            action=argparse.BooleanOptionalAction,
            default=False,
            help="write the run manifest (fingerprint, span tree, "
            "artifact digests) to manifest.json",
        )
        p.add_argument(
            "--store-run",
            action="store_true",
            help="append the run manifest to the longitudinal run store "
            "(results/runs or $REPRO_RUNS_DIR)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="attach per-span CPU time, peak RSS and GC counts to "
            "the trace (opt-in; artifacts are unaffected)",
        )
        p.add_argument(
            "--events",
            metavar="PATH",
            default=None,
            help="stream live pipeline events (JSON lines) to PATH; "
            "tail it with 'repro obs tail PATH --follow'",
        )
        p.add_argument(
            "--events-max-bytes",
            type=int,
            metavar="N",
            default=None,
            help="rotate the --events log when it reaches N bytes "
            "(rotated-away events are recorded in the manifest's "
            "drop accounting)",
        )
        p.add_argument(
            "--events-backups",
            type=int,
            metavar="N",
            default=1,
            help="rotated --events generations to keep (default 1)",
        )
        p.add_argument(
            "--ring",
            type=int,
            metavar="N",
            default=0,
            help="also keep the last N events in a bounded in-memory "
            "ring (0 = off); evictions are counted, never silent",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="render live per-stage progress (chunk/item counts, "
            "ETA) to stderr while the pipeline runs",
        )

    for name in _DRIVERS:
        p = sub.add_parser(name, help=f"regenerate the '{name}' experiment")
        add_common(p)

    run_p = sub.add_parser("run", help="run the scenario and dump the dataset")
    add_common(run_p)
    run_p.add_argument("--out", default=None, help="write events as JSONL here")

    report_p = sub.add_parser("report", help="full combined intelligence report")
    add_common(report_p)

    drift_p = sub.add_parser("drift", help="pattern drift: past model vs future traffic")
    add_common(drift_p)

    model_p = sub.add_parser(
        "model", help="persisted classification models (export from a run)"
    )
    model_sub = model_p.add_subparsers(dest="model_command", required=True)
    model_export_p = model_sub.add_parser(
        "export",
        help="freeze a landscape into a content-addressed model artifact",
    )
    add_common(model_export_p)
    model_export_p.add_argument(
        "--out",
        default="model.json",
        metavar="FILE",
        help="where to write the model artifact (default model.json)",
    )
    model_export_p.add_argument(
        "--run",
        default=None,
        metavar="REF",
        help="export from a stored run (run id, unique prefix, "
        "fingerprint/id or manifest path) instead of the scenario "
        "flags: the stored config is rebuilt and replayed (use "
        "--cache to replay from the stage store instead of "
        "recomputing)",
    )
    model_export_p.add_argument(
        "--runs",
        metavar="DIR",
        default=None,
        help="run store root (default results/runs or $REPRO_RUNS_DIR)",
    )
    model_export_p.add_argument(
        "--store",
        action="store_true",
        help="with --run: also copy the artifact into the run store "
        "next to its manifest (<fingerprint>/<run_id>.model.json), "
        "which is where 'repro classify --model REF' looks",
    )

    classify_p = sub.add_parser(
        "classify", help="classify events against an exported model"
    )
    classify_p.add_argument(
        "--model",
        required=True,
        metavar="REF",
        help="model artifact path, or a run-store run id/prefix whose "
        "exported model sits next to its manifest",
    )
    classify_p.add_argument(
        "--runs",
        metavar="DIR",
        default=None,
        help="run store root for --model prefixes (default results/runs "
        "or $REPRO_RUNS_DIR)",
    )
    classify_p.add_argument(
        "--event",
        default=None,
        metavar="JSON",
        help="single-shot: one event as JSON in the 'repro run --out' "
        "line layout ('-' reads it from stdin)",
    )
    classify_p.add_argument(
        "--batch",
        default=None,
        metavar="JSONL",
        help="classify every event of a JSONL dump through the "
        "columnar batch kernel",
    )
    classify_p.add_argument(
        "--out",
        default=None,
        metavar="JSONL",
        help="write one JSON line per event (default: human-readable "
        "rendering on stdout)",
    )
    classify_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the classify session's metrics snapshot as JSON",
    )
    classify_p.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="stream classify.* events (JSON lines) to PATH",
    )

    evasion_p = sub.add_parser("evasion", help="EPM vs a repacking engine")
    evasion_p.add_argument("--seed", type=int, default=2010)
    evasion_p.add_argument("--variants", type=int, default=10)
    evasion_p.add_argument("--weeks", type=int, default=12)

    cache_p = sub.add_parser(
        "cache", help="inspect the whole-run and per-stage artifact caches"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)

    def add_cache_root(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--root",
            metavar="DIR",
            default=None,
            help="cache root (default $REPRO_CACHE_DIR or "
            "~/.cache/repro/scenarios; stage artifacts live under "
            "<root>/stages)",
        )

    cache_ls_p = cache_sub.add_parser(
        "ls", help="list stored whole-run and per-stage artifacts"
    )
    add_cache_root(cache_ls_p)

    cache_gc_p = cache_sub.add_parser(
        "gc",
        help="remove stale stage artifacts (interrupted writes, orphaned "
        "sidecars, superseded cache formats)",
    )
    add_cache_root(cache_gc_p)
    cache_gc_p.add_argument(
        "--clear",
        action="store_true",
        help="remove every cached artifact, stale or not",
    )

    cache_explain_p = cache_sub.add_parser(
        "explain",
        help="per-stage hit/miss forecast for a (seed, config), naming "
        "the config key that invalidated each missing stage",
    )
    add_cache_root(cache_explain_p)
    cache_explain_p.add_argument("--seed", type=int, default=2010)
    cache_explain_p.add_argument("--scale", type=float, default=1.0)
    cache_explain_p.add_argument("--weeks", type=int, default=74)

    obs_p = sub.add_parser(
        "obs", help="longitudinal observability: run store, diffs, profiles"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--runs",
            metavar="DIR",
            default=None,
            help="run store root (default results/runs or $REPRO_RUNS_DIR)",
        )

    list_p = obs_sub.add_parser("list", help="stored runs, newest last")
    add_store(list_p)
    list_p.add_argument(
        "--fingerprint", default=None, help="only runs of this config fingerprint"
    )
    list_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="only the newest N runs (after the fingerprint filter)",
    )

    diff_p = obs_sub.add_parser(
        "diff", help="compare two runs: digests, metrics, timings"
    )
    add_store(diff_p)
    diff_p.add_argument("ref_a", help="reference run: id, id prefix or manifest path")
    diff_p.add_argument("ref_b", help="candidate run: id, id prefix or manifest path")
    diff_p.add_argument(
        "--timing-tolerance",
        type=float,
        default=None,
        help="stage wall-time ratio treated as a regression (default 1.5)",
    )
    diff_p.add_argument(
        "--fail-on-timing",
        action="store_true",
        help="non-zero exit also on timing regressions (off by default: "
        "wall times are machine-dependent)",
    )

    tail_p = obs_sub.add_parser(
        "tail", help="replay or follow a pipeline event stream (JSON lines)"
    )
    tail_p.add_argument("path", help="event log written by --events")
    tail_p.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep polling for new events until interrupted",
    )
    tail_p.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="only show matching events; 'kind=stage.*' prefix-matches "
        "the kind, any other key matches an event field (repeatable, "
        "AND semantics)",
    )

    export_p = obs_sub.add_parser(
        "export", help="export recorded telemetry for external tooling"
    )
    add_store(export_p)
    export_p.add_argument(
        "ref",
        help="metrics snapshot path, manifest path, or stored run id/prefix",
    )
    export_p.add_argument(
        "--format",
        choices=("prometheus", "openmetrics", "chrome", "jsonl"),
        default="prometheus",
        help="prometheus: text exposition format; openmetrics: the "
        "OpenMetrics variant (# EOF terminated); chrome: trace-event "
        "JSON of the span tree; jsonl: one JSON object per sample",
    )
    export_p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write to PATH instead of stdout",
    )

    history_p = obs_sub.add_parser(
        "history", help="time series of one metric over stored runs"
    )
    add_store(history_p)
    history_p.add_argument(
        "metric",
        help="snapshot key (lsh.clusters, epm.clusters{dimension=mu}), "
        "bare name (sums labels), histogram quantile "
        "(executor.chunk_seconds:p50), or stage:<span> for wall seconds",
    )
    history_p.add_argument(
        "--fingerprint", default=None, help="only runs of this config fingerprint"
    )
    history_p.add_argument(
        "--timing-tolerance",
        type=float,
        default=None,
        help="drift band around the trailing median (default 1.5)",
    )

    trace_p = obs_sub.add_parser(
        "trace", help="export a stored run's span tree (Chrome trace / flame)"
    )
    add_store(trace_p)
    trace_p.add_argument("ref", help="run id, id prefix or manifest path")
    trace_p.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="write Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    trace_p.add_argument(
        "--flame",
        action="store_true",
        help="print the flamegraph-style text view (default when no --chrome)",
    )

    health_p = obs_sub.add_parser(
        "health",
        help="SLO/anomaly health report of a stored run or manifest",
    )
    add_store(health_p)
    health_p.add_argument("ref", help="run id, id prefix or manifest path")
    health_p.add_argument(
        "--baseline",
        default=None,
        metavar="REF",
        help="also evaluate this run and gate only on findings NEW "
        "relative to it (rule+target+window identity)",
    )
    health_p.add_argument(
        "--fail-on",
        choices=("info", "warning", "critical"),
        default="critical",
        help="non-zero exit when a (new) finding at or above this "
        "severity exists (default: critical)",
    )
    health_p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of the text view",
    )

    dash_p = obs_sub.add_parser(
        "dashboard",
        help="sparkline terminal view of a run's window series",
    )
    add_store(dash_p)
    dash_p.add_argument(
        "ref",
        help="run id, manifest path or window-report path; with "
        "--follow: an event log written by --events",
    )
    dash_p.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="treat REF as a live event log and redraw the dashboard "
        "on every window.rollup event until interrupted",
    )
    dash_p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the rendered dashboard to PATH instead of stdout",
    )

    top_p = obs_sub.add_parser(
        "top",
        help="resource/throughput view of a run's event stream",
    )
    top_p.add_argument(
        "path",
        help="event log written by --events (works mid-run)",
    )
    top_p.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep polling the log and redraw a frame per work event "
        "(chunk/stage finish, drops) until interrupted",
    )
    top_p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the rendered frame to PATH instead of stdout",
    )

    query_p = obs_sub.add_parser(
        "query",
        help="cross-run analytics: select targets over every stored run",
    )
    add_store(query_p)
    query_p.add_argument(
        "targets",
        nargs="+",
        metavar="TARGET",
        help="metric:<key>, series:<name>, golden:deviations or "
        "span:<name>[/cpu_seconds|max_rss_kb|gc_collections]",
    )
    query_p.add_argument(
        "--agg",
        default=None,
        metavar="AGG",
        help="aggregate across runs: min, max, mean or pNN (e.g. p50)",
    )
    query_p.add_argument(
        "--fingerprint",
        default=None,
        help="only runs of this config fingerprint (prefix, >= 4 chars)",
    )
    query_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="only the newest N runs (after the fingerprint filter)",
    )
    query_p.add_argument(
        "--include",
        action="append",
        default=[],
        metavar="PATH",
        help="also include this bare manifest file as a row (repeatable; "
        "a <stem>.windows.json sidecar rides along)",
    )
    query_p.add_argument(
        "--format",
        choices=("table", "json", "openmetrics"),
        default="table",
        help="table: fixed-width text; json: machine-readable rows + "
        "aggregates; openmetrics: one gauge sample per (run, target)",
    )
    query_p.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    query_p.add_argument(
        "--no-index",
        dest="use_index",
        action="store_false",
        help="bypass the persisted query index and load every manifest",
    )

    regress_p = obs_sub.add_parser(
        "regress",
        help="trend-aware regression scan over the stored run history",
    )
    add_store(regress_p)
    regress_p.add_argument(
        "--fingerprint",
        default=None,
        help="only scan runs of this config fingerprint (prefix)",
    )
    regress_p.add_argument(
        "--targets",
        action="append",
        default=[],
        metavar="TARGET",
        help="restrict the rule set to these targets (repeatable; "
        "default: every shipped rule)",
    )
    regress_p.add_argument(
        "--include",
        action="append",
        default=[],
        metavar="PATH",
        help="also include this bare manifest file as a row, e.g. the "
        "committed CI reference (repeatable)",
    )
    regress_p.add_argument(
        "--baseline",
        default=None,
        metavar="REPORT.json",
        help="gate only on findings whose (detector, target) identity "
        "this previously saved report lacks",
    )
    regress_p.add_argument(
        "--fail-on",
        type=_severity_arg,
        default="critical",
        metavar="SEVERITY",
        help="non-zero exit when a (new) finding at or above this "
        "severity exists: info, warning/warn or critical/crit "
        "(default: critical)",
    )
    regress_p.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the machine-readable report JSON to PATH",
    )
    regress_p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of the text view",
    )

    cost_p = obs_sub.add_parser(
        "cost",
        help="per-stage cost attribution of a config delta between two runs",
    )
    add_store(cost_p)
    cost_p.add_argument("ref_a", help="reference run: id, id prefix or manifest path")
    cost_p.add_argument("ref_b", help="candidate run: id, id prefix or manifest path")
    cost_p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of the text view",
    )

    validate_p = obs_sub.add_parser(
        "validate", help="validate emitted JSON and/or every stored run"
    )
    add_store(validate_p)
    validate_p.add_argument("--metrics", default=None, help="metrics snapshot path")
    validate_p.add_argument("--manifest", default=None, help="run manifest path")
    validate_p.add_argument(
        "--events",
        default=None,
        metavar="JSONL",
        help="event log to validate (sequence gaps, unknown kinds); "
        "with --manifest it is also cross-checked against the span tree",
    )
    validate_p.add_argument(
        "--windows",
        default=None,
        metavar="JSON",
        help="window-report sidecar to validate; with --manifest its "
        "fingerprint is also checked against the manifest's",
    )
    validate_p.add_argument(
        "--rebuild-index",
        action="store_true",
        help="regenerate a missing/corrupted run-store index.json from "
        "the on-disk manifest tree before validating (refuses on "
        "content-address mismatch)",
    )
    validate_p.add_argument(
        "--query-index",
        action="store_true",
        help="also check the persisted query index matches a fresh "
        "rebuild from the stored manifests",
    )
    validate_p.add_argument(
        "--no-require-scenario",
        dest="require_scenario",
        action="store_false",
        help="skip the required-scenario-metrics completeness check",
    )
    return parser


def _run_scenario(args: argparse.Namespace) -> ScenarioRun:
    configure_logging(args.log_level, json_path=args.log_json)
    config = ScenarioConfig(
        n_weeks=args.weeks,
        scale=args.scale,
        executor=args.executor,
        jobs=args.jobs,
        profile=args.profile,
        events=args.events,
        events_max_bytes=args.events_max_bytes,
        events_backups=args.events_backups,
        ring=args.ring,
        progress=args.progress,
        columnar=args.columnar,
        shards=args.shards,
        windows=args.windows,
    )
    # One registry for the whole session: the scenario build records
    # into it, and so do the cache load/store paths around the build.
    # Same for the event bus: the CLI owns a session-scoped bus so
    # cache hits/misses around the build land on the stream too.
    registry = MetricsRegistry()
    bus: obs_events.EventBus | obs_events.NullEventBus = obs_events.NULL_BUS
    if args.events or args.progress or args.ring:
        transports: list = []
        if args.events:
            transports.append(
                obs_events.FileTransport(
                    args.events,
                    max_bytes=args.events_max_bytes,
                    backups=args.events_backups,
                )
            )
        if args.ring:
            transports.append(obs_events.RingTransport(args.ring))
        if args.progress:
            transports.append(obs_events.ProgressRenderer(sys.stderr))
        bus = obs_events.EventBus(transports)
    try:
        with obs_metrics.use(registry), obs_events.use_bus(bus):
            if args.cache:
                from repro.experiments.cache import StageStore, cached_run

                stage_store = StageStore() if args.cache_stages else None
                run = cached_run(args.seed, config, stage_store=stage_store)
            else:
                run = PaperScenario(seed=args.seed, config=config).run()
    finally:
        bus.close()
    if args.timings:
        rendered = run.trace.render() if run.trace else run.timings.render()
        print(rendered, file=sys.stderr)
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.write_text(registry.snapshot().to_json() + "\n", encoding="utf-8")
        log.info("metrics written", extra={"path": str(path)})
    if args.manifest:
        if run.manifest is None:
            log.warning("run carries no manifest; nothing written")
        else:
            path = run.manifest.write("manifest.json")
            log.info("manifest written", extra={"path": str(path)})
            if run.windows is not None:
                sidecar = run.windows.write("manifest.windows.json")
                log.info("window report written", extra={"path": str(sidecar)})
    if args.store_run:
        if run.manifest is None:
            log.warning("run carries no manifest; nothing stored")
        else:
            from repro.obs.history import RUN_ID_LENGTH, RunStore

            store = RunStore()
            # Only ingest the event log when it describes the run that
            # was just built — a --cache hit replays a pickled run
            # whose manifest the session's (cache-only) log cannot
            # account for.
            events_path = args.events if args.events and not args.cache else None
            if run.windows is not None:
                # Written before add() so the index entry records it.
                target = store.windows_path_for(
                    run.manifest.fingerprint,
                    run.manifest.content_id()[:RUN_ID_LENGTH],
                )
                target.parent.mkdir(parents=True, exist_ok=True)
                run.windows.write(target)
            run_id = store.add(run.manifest, events_path=events_path)
            log.info(
                "run stored", extra={"run_id": run_id, "store": str(store.root)}
            )
    return run


def _cmd_evasion(args: argparse.Namespace) -> str:
    from repro.experiments.evasion import evasion_experiment
    from repro.malware.polymorphism import PolymorphyMode
    from repro.util.tables import TextTable

    outcomes = evasion_experiment(
        seed=args.seed, n_variants=args.variants, n_weeks=args.weeks
    )
    table = TextTable(
        ["engine", "M-clusters", "precision", "recall", "F1"],
        title="Evasion: EPM vs polymorphic-engine sophistication",
    )
    for mode in (PolymorphyMode.PER_INSTANCE, PolymorphyMode.REPACK):
        outcome = outcomes[mode]
        table.add_row(
            [
                mode.value,
                outcome.n_m_clusters,
                f"{outcome.quality.precision:.2f}",
                f"{outcome.quality.recall:.2f}",
                f"{outcome.quality.f1:.2f}",
            ]
        )
    return table.render()


def _load_manifest_payload(store, ref: str) -> dict:
    import json

    return json.loads(store.resolve(ref).read_text(encoding="utf-8"))


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import (
        ScenarioCache,
        StageStore,
        explain_stages,
        render_explanations,
    )

    root = Path(args.root) if args.root else None
    cache = ScenarioCache(root)
    store = StageStore(root / "stages" if root is not None else None)

    if args.cache_command == "ls":
        runs = cache.entries()
        print(f"whole-run cache ({cache.root}): {len(runs)} entry(ies)")
        for fingerprint, size in runs:
            print(f"  {fingerprint[:16]}  {size / 1e6:8.2f} MB")
        artifacts = store.entries()
        print(f"stage store ({store.root}): {len(artifacts)} artifact(s)")
        for stage, fingerprint, size in artifacts:
            print(f"  {stage:<12} {fingerprint[:16]}  {size / 1e6:8.2f} MB")
        return 0
    if args.cache_command == "gc":
        removed, reclaimed = store.gc(clear=args.clear)
        if args.clear:
            for _fingerprint, size in cache.entries():
                reclaimed += size
            removed += cache.clear()
        print(f"removed {removed} file(s), reclaimed {reclaimed / 1e6:.2f} MB")
        return 0
    if args.cache_command == "explain":
        config = ScenarioConfig(n_weeks=args.weeks, scale=args.scale)
        print(render_explanations(explain_stages(args.seed, config, store)))
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _severity_arg(text: str) -> str:
    """Normalize a ``--fail-on`` severity (accepts warn/crit shorthands)."""
    aliases = {"warn": "warning", "crit": "critical"}
    value = aliases.get(text.lower(), text.lower())
    if value not in ("info", "warning", "critical"):
        raise argparse.ArgumentTypeError(
            f"unknown severity {text!r}: expected info, warning or critical"
        )
    return value


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.diff import (
        DEFAULT_TIMING_TOLERANCE,
        diff_manifests,
        render_history,
    )
    from repro.obs.history import RunStore

    store = RunStore(getattr(args, "runs", None))
    tolerance = (
        getattr(args, "timing_tolerance", None) or DEFAULT_TIMING_TOLERANCE
    )

    if args.obs_command == "list":
        print(
            store.render_listing(
                store.entries(args.fingerprint, limit=args.limit)
            )
        )
        return 0
    if args.obs_command == "query":
        return _cmd_obs_query(args, store)
    if args.obs_command == "regress":
        return _cmd_obs_regress(args, store)
    if args.obs_command == "cost":
        from repro.obs.query import attribute_cost

        report = attribute_cost(
            _load_manifest_payload(store, args.ref_a),
            _load_manifest_payload(store, args.ref_b),
        )
        print(report.to_json() if args.json else report.render())
        return 0
    if args.obs_command == "diff":

        def events_for(ref: str):
            try:
                return store.load_events(ref)
            except Exception:  # unresolvable ref / file-path manifests
                return None

        diff = diff_manifests(
            _load_manifest_payload(store, args.ref_a),
            _load_manifest_payload(store, args.ref_b),
            timing_tolerance=tolerance,
            events_a=events_for(args.ref_a),
            events_b=events_for(args.ref_b),
        )
        print(diff.render())
        return 1 if diff.failed(fail_on_timing=args.fail_on_timing) else 0
    if args.obs_command == "tail":
        from repro.obs.events import iter_events, matches, parse_filters, render_event

        filters = parse_filters(args.filter)
        try:
            for event in iter_events(args.path, follow=args.follow):
                if matches(event, filters):
                    print(render_event(event), flush=args.follow)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        except BrokenPipeError:  # downstream pager/head closed the pipe
            import os

            # Re-point stdout at devnull so the interpreter's shutdown
            # flush doesn't raise a second time.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    if args.obs_command == "export":
        import json

        from repro.obs.export import export_payload

        ref_path = Path(args.ref)
        if ref_path.is_file():
            payload = json.loads(ref_path.read_text(encoding="utf-8"))
        else:
            payload = store.load_payload(args.ref)
        try:
            windows = store.load_windows(args.ref)
        except Exception:  # bare snapshot files resolve to no sidecar
            windows = None
        if windows is not None:
            payload = {**payload, "windows": windows}
        rendered = export_payload(payload, args.format)
        if args.out:
            Path(args.out).write_text(rendered, encoding="utf-8")
            print(f"wrote {args.format} export of {args.ref} to {args.out}")
        else:
            print(rendered, end="")
        return 0
    if args.obs_command == "history":
        print(
            render_history(
                store,
                args.metric,
                fingerprint=args.fingerprint,
                timing_tolerance=tolerance,
            )
        )
        return 0
    if args.obs_command == "trace":
        from repro.obs.profile import flame_view, write_chrome_trace

        tree = _load_manifest_payload(store, args.ref).get("span_tree", {})
        if args.chrome:
            path = write_chrome_trace(tree, args.chrome)
            print(f"wrote Chrome trace of {args.ref} to {path}")
        if args.flame or not args.chrome:
            print(flame_view(tree))
        return 0
    if args.obs_command == "health":
        return _cmd_obs_health(args, store)
    if args.obs_command == "dashboard":
        return _cmd_obs_dashboard(args, store)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    if args.obs_command == "validate":
        from repro.obs.validate import main as validate_main

        forwarded: list[str] = []
        if args.metrics:
            forwarded += ["--metrics", args.metrics]
        if args.manifest:
            forwarded += ["--manifest", args.manifest]
        if args.events:
            forwarded += ["--events", args.events]
        if args.windows:
            forwarded += ["--windows", args.windows]
        if not getattr(args, "require_scenario", True):
            forwarded += ["--no-require-scenario"]
        if args.rebuild_index:
            forwarded += ["--rebuild-index"]
        if args.query_index:
            forwarded += ["--query-index"]
        # Validate the store when asked for explicitly, when it exists,
        # or when there is nothing else to validate (then a missing
        # store is a loud per-file error, not a silent pass).  The
        # index flags imply the store too: --rebuild-index exists
        # precisely for stores whose index.json is gone.
        if (
            args.runs
            or store.index_path.is_file()
            or args.rebuild_index
            or args.query_index
            or not forwarded
        ):
            forwarded += ["--runs", str(store.root)]
        return validate_main(forwarded)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_obs_query(args: argparse.Namespace, store) -> int:
    from repro.obs.query import build_frame, run_query

    frame = build_frame(
        store, include=args.include, use_index=getattr(args, "use_index", True)
    )
    result = run_query(
        frame,
        args.targets,
        agg=args.agg,
        fingerprint=args.fingerprint,
        limit=args.limit,
    )
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(result.to_json())
    elif fmt == "openmetrics":
        print(result.to_openmetrics(), end="")
    else:
        print(result.render())
    return 0


def _cmd_obs_regress(args: argparse.Namespace, store) -> int:
    import json

    from repro.obs.query import build_frame
    from repro.obs.regress import (
        DEFAULT_RULES,
        RegressionReport,
        new_findings,
        run_regression,
    )

    rules = DEFAULT_RULES
    if args.targets:
        rules = tuple(r for r in DEFAULT_RULES if r.target in args.targets)
        if not rules:
            print(
                "no shipped rule matches --targets "
                + ", ".join(args.targets)
                + " (rules cover: "
                + ", ".join(sorted({r.target for r in DEFAULT_RULES}))
                + ")",
                file=sys.stderr,
            )
            return 2
    frame = build_frame(store, include=args.include)
    report = run_regression(frame, rules=rules, fingerprint=args.fingerprint)
    baseline = None
    if args.baseline:
        baseline = RegressionReport.from_dict(
            json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        )
    fresh = new_findings(report, baseline)
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n", encoding="utf-8")
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        if baseline is not None:
            print(f"{len(fresh)} new finding(s) vs baseline {args.baseline}")
    from repro.obs.health import SEVERITIES

    floor = SEVERITIES.index(args.fail_on)
    gated = [f for f in fresh if SEVERITIES.index(f.severity) >= floor]
    return 1 if gated else 0


def _cmd_obs_health(args: argparse.Namespace, store) -> int:
    from repro.obs.health import SEVERITIES, evaluate_health, new_findings

    def report_for(ref: str):
        payload = _load_manifest_payload(store, ref)
        return evaluate_health(payload, store.load_windows(ref))

    report = report_for(args.ref)
    baseline = report_for(args.baseline) if args.baseline else None
    fresh = new_findings(report, baseline)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
        if baseline is not None:
            print(f"{len(fresh)} new finding(s) vs baseline {args.baseline}")
    floor = SEVERITIES.index(args.fail_on)
    gated = [f for f in fresh if SEVERITIES.index(f.severity) >= floor]
    return 1 if gated else 0


def _cmd_obs_dashboard(args: argparse.Namespace, store) -> int:
    import json

    from repro.obs.dashboard import follow_dashboard, render_dashboard
    from repro.obs.health import evaluate_health

    if args.follow:
        try:
            follow_dashboard(args.ref, sys.stdout)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return 0
    # REF may be a window report itself, or a manifest/run id whose
    # sidecar the store resolves; a manifest also yields health findings.
    windows = None
    health = None
    ref_path = Path(args.ref)
    if ref_path.is_file():
        payload = json.loads(ref_path.read_text(encoding="utf-8"))
        if "window_weeks" in payload and "series" in payload:
            windows = payload
    if windows is None:
        windows = store.load_windows(args.ref)
        if windows is None:
            print(
                f"no window report for {args.ref}: run with --windows N "
                "and --manifest/--store-run first",
                file=sys.stderr,
            )
            return 1
        manifest = _load_manifest_payload(store, args.ref)
        health = evaluate_health(manifest, windows).as_dict()
    rendered = render_dashboard(windows, health)
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"wrote dashboard of {args.ref} to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from repro.obs.events import iter_events
    from repro.obs.top import follow_top, top_from_events

    if args.follow:
        try:
            follow_top(args.path, sys.stdout)
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return 0
    rendered = top_from_events(iter_events(args.path))
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"wrote top view of {args.path} to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    """``repro model export``: freeze a landscape for serving."""
    from repro.serve.model import ModelArtifact

    run_id = None
    manifest_path = None
    if args.run:
        import json
        from dataclasses import replace as dc_replace

        from repro.experiments.scenario import config_from_canonical
        from repro.obs.history import RunStore

        store = RunStore(args.runs)
        manifest_path = store.resolve(args.run)
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        run_id = manifest_path.stem
        # Execution-only sinks of the stored run must not replay (the
        # export session owns its own telemetry); the semantic
        # fingerprint ignores them, so the replay still matches.
        config = dc_replace(
            config_from_canonical(payload["config"]),
            events=None,
            progress=False,
            ring=0,
            profile=False,
        )
        seed = int(payload["seed"])
        configure_logging(args.log_level, json_path=args.log_json)
        if args.cache:
            from repro.experiments.cache import StageStore, cached_run

            stage_store = StageStore() if args.cache_stages else None
            run = cached_run(seed, config, stage_store=stage_store)
        else:
            run = PaperScenario(seed=seed, config=config).run()
        if run.manifest is not None and run.manifest.fingerprint != payload.get(
            "fingerprint"
        ):
            print(
                f"error: replayed fingerprint {run.manifest.fingerprint[:16]} "
                f"does not match stored run {run_id}",
                file=sys.stderr,
            )
            return 1
    else:
        run = _run_scenario(args)
    artifact = ModelArtifact.from_run(run, run_id=run_id)
    target = artifact.save(args.out)
    print(f"model {artifact.model_id} (run fingerprint "
          f"{artifact.fingerprint[:16]}) -> {target}")
    if args.store:
        if manifest_path is None:
            print("error: --store needs --run (a stored run to sit next to)",
                  file=sys.stderr)
            return 1
        stored = manifest_path.with_name(f"{run_id}.model.json")
        artifact.save(stored)
        print(f"stored model next to run {run_id}: {stored}")
    return 0


def _resolve_model_path(args: argparse.Namespace) -> Path:
    """``--model`` as a filesystem path, else a run-store reference."""
    path = Path(args.model)
    if path.is_file():
        return path
    from repro.obs.history import RunStore

    manifest_path = RunStore(args.runs).resolve(args.model)
    candidate = manifest_path.with_name(f"{manifest_path.stem}.model.json")
    if not candidate.is_file():
        raise FileNotFoundError(
            f"run {manifest_path.stem} has no exported model next to its "
            f"manifest; run 'repro model export --run {manifest_path.stem} "
            "--store' first"
        )
    return candidate


def _cmd_classify(args: argparse.Namespace) -> int:
    """``repro classify``: the serving path over an exported model."""
    import json

    from repro.egpm.events import event_from_dict
    from repro.serve.classifier import ServingClassifier
    from repro.serve.model import ModelArtifact

    if bool(args.event) == bool(args.batch):
        print("error: pass exactly one of --event or --batch", file=sys.stderr)
        return 2
    try:
        model_path = _resolve_model_path(args)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    model = ModelArtifact.load(model_path)
    classifier = ServingClassifier(model)

    registry = MetricsRegistry()
    bus: obs_events.EventBus | obs_events.NullEventBus = obs_events.NULL_BUS
    if args.events:
        bus = obs_events.EventBus([obs_events.FileTransport(args.events)])
    try:
        with obs_metrics.use(registry), obs_events.use_bus(bus):
            if args.batch:
                events = [
                    event_from_dict(json.loads(line))
                    for line in Path(args.batch).read_text(
                        encoding="utf-8"
                    ).splitlines()
                    if line.strip()
                ]
                results = classifier.classify_events(events)
            else:
                raw = args.event
                if raw == "-":
                    raw = sys.stdin.read()
                else:
                    try:
                        if Path(raw).is_file():
                            raw = Path(raw).read_text(encoding="utf-8")
                    except OSError:
                        pass  # inline JSON longer than a legal filename
                event = event_from_dict(json.loads(raw))
                events = [event]
                bus.emit(
                    "classify.start", model=model.model_id, events=1, mode="single"
                )
                results = [classifier.classify_event(event)]
                bus.emit("classify.finish", model=model.model_id, events=1)
    finally:
        bus.close()

    lines = []
    for event, result in zip(events, results):
        lines.append(
            {
                "event_id": event.event_id,
                "model": model.model_id,
                "classifications": {
                    dimension: classification.as_dict()
                    for dimension, classification in sorted(result.items())
                },
            }
        )
    if args.out:
        Path(args.out).write_text(
            "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines),
            encoding="utf-8",
        )
        print(f"classified {len(lines)} event(s) -> {args.out}")
    else:
        for line in lines:
            rendered = ", ".join(
                f"{dimension}: {payload['rendered']}"
                + (
                    f" (cluster {payload['cluster']})"
                    if payload["cluster"] is not None
                    else " (novel pattern)"
                )
                for dimension, payload in line["classifications"].items()
            )
            print(f"event {line['event_id']}: {rendered or 'no dimension applies'}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            registry.snapshot().to_json() + "\n", encoding="utf-8"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "evasion":
        print(_cmd_evasion(args))
        return 0
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "classify":
        return _cmd_classify(args)

    run = _run_scenario(args)
    if args.command == "run":
        print(run.headline())
        if args.out:
            written = run.dataset.save_jsonl(args.out)
            print(f"wrote {written} events to {args.out}")
        return 0
    if args.command == "report":
        from repro.analysis.report import full_report

        print(full_report(run))
        return 0
    if args.command == "drift":
        from repro.analysis.stability import drift_analysis, render_drift

        print(render_drift(drift_analysis(run.dataset, run.grid)))
        return 0

    _data, text = _DRIVERS[args.command](run)
    print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
