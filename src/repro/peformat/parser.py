"""Parser: PE image bytes -> :class:`PEInfo` header features.

This is the reproduction's stand-in for the ``pefile`` library the paper
used to extract μ-dimension features.  It performs genuine structural
parsing — DOS header, COFF header, optional header, section table, and a
walk of the import directory through RVA-to-file-offset translation — and
raises :class:`PEFormatError` on anything malformed, which is how
truncated Nepenthes downloads surface in the pipeline.
"""

from __future__ import annotations

import struct

from repro.peformat.structures import PEFormatError, PEInfo

_COFF_SIZE = 20
_MAX_IMPORT_DESCRIPTORS = 256
_MAX_IMPORT_SYMBOLS = 4096
_MAX_NAME_LEN = 256


def _read(data: bytes, offset: int, size: int) -> bytes:
    if offset < 0 or offset + size > len(data):
        raise PEFormatError(
            f"truncated image: need bytes [{offset}, {offset + size}), have {len(data)}"
        )
    return data[offset : offset + size]


def _read_cstring(data: bytes, offset: int, what: str) -> str:
    end = data.find(b"\x00", offset, offset + _MAX_NAME_LEN)
    if end < 0:
        raise PEFormatError(f"unterminated {what} string at offset {offset}")
    return data[offset:end].decode("latin-1")


class _SectionEntry:
    __slots__ = ("name", "virtual_size", "virtual_address", "raw_size", "raw_pointer")

    def __init__(self, name: str, vsize: int, vaddr: int, rsize: int, rptr: int) -> None:
        self.name = name
        self.virtual_size = vsize
        self.virtual_address = vaddr
        self.raw_size = rsize
        self.raw_pointer = rptr


def _rva_to_offset(sections: list[_SectionEntry], rva: int) -> int:
    for sec in sections:
        span = max(sec.virtual_size, sec.raw_size)
        if sec.virtual_address <= rva < sec.virtual_address + span:
            return sec.raw_pointer + (rva - sec.virtual_address)
    raise PEFormatError(f"RVA {rva:#x} maps to no section")


def _parse_imports(
    data: bytes, sections: list[_SectionEntry], import_rva: int
) -> dict[str, tuple[str, ...]]:
    imports: dict[str, tuple[str, ...]] = {}
    desc_offset = _rva_to_offset(sections, import_rva)
    for index in range(_MAX_IMPORT_DESCRIPTORS):
        raw = _read(data, desc_offset + index * 20, 20)
        oft_rva, _stamp, _chain, name_rva, ft_rva = struct.unpack("<IIIII", raw)
        if oft_rva == 0 and name_rva == 0 and ft_rva == 0:
            return imports
        if name_rva == 0:
            raise PEFormatError("import descriptor with no DLL name")
        dll = _read_cstring(data, _rva_to_offset(sections, name_rva), "DLL name")
        thunk_rva = oft_rva or ft_rva
        thunk_offset = _rva_to_offset(sections, thunk_rva)
        symbols: list[str] = []
        for j in range(_MAX_IMPORT_SYMBOLS):
            (entry,) = struct.unpack("<I", _read(data, thunk_offset + j * 4, 4))
            if entry == 0:
                break
            if entry & 0x8000_0000:
                symbols.append(f"ordinal:{entry & 0xFFFF}")
                continue
            hint_offset = _rva_to_offset(sections, entry)
            _read(data, hint_offset, 2)  # the hint; validates bounds
            symbols.append(_read_cstring(data, hint_offset + 2, "import symbol"))
        else:
            raise PEFormatError("unterminated import thunk array")
        imports[dll] = tuple(symbols)
    raise PEFormatError("unterminated import descriptor table")


def parse_pe(data: bytes) -> PEInfo:
    """Parse a PE image and return its header features.

    Raises :class:`PEFormatError` for non-PE or truncated input.  Only
    32-bit (PE32) optional headers are understood, matching the malware
    population of the paper's period.
    """
    if len(data) < 0x40 or data[0:2] != b"MZ":
        raise PEFormatError("missing MZ signature")
    (e_lfanew,) = struct.unpack("<I", _read(data, 0x3C, 4))
    if _read(data, e_lfanew, 4) != b"PE\x00\x00":
        raise PEFormatError("missing PE signature")

    coff = _read(data, e_lfanew + 4, _COFF_SIZE)
    machine, n_sections, _stamp, _symptr, _nsyms, opt_size, _chars = struct.unpack(
        "<HHIIIHH", coff
    )
    if n_sections == 0 or n_sections > 96:
        raise PEFormatError(f"implausible section count {n_sections}")
    if opt_size < 96:
        raise PEFormatError(f"optional header too small ({opt_size})")

    opt_offset = e_lfanew + 4 + _COFF_SIZE
    opt_head = _read(data, opt_offset, 28)
    (magic, linker_major, linker_minor) = struct.unpack("<HBB", opt_head[:4])
    if magic != 0x10B:
        raise PEFormatError(f"not a PE32 optional header (magic {magic:#x})")
    win_fields = _read(data, opt_offset + 28, 68)
    (
        _image_base,
        _sec_align,
        _file_align,
        os_major,
        os_minor,
        _img_major,
        _img_minor,
        _ss_major,
        _ss_minor,
        _win32ver,
        _size_of_image,
        _size_of_headers,
        _checksum,
        subsystem,
        _dll_chars,
        _sr,
        _sc,
        _hr,
        _hc,
        _loader,
        n_rva_sizes,
    ) = struct.unpack("<IIIHHHHHHIIIIHHIIIIII", win_fields)

    import_rva = import_size = 0
    if n_rva_sizes >= 2:
        import_rva, import_size = struct.unpack(
            "<II", _read(data, opt_offset + 96 + 8, 8)
        )

    sec_table = opt_offset + opt_size
    sections: list[_SectionEntry] = []
    section_names: list[str] = []
    for i in range(n_sections):
        entry = _read(data, sec_table + i * 40, 40)
        name = entry[:8].decode("latin-1")
        vsize, vaddr, rsize, rptr = struct.unpack("<IIII", entry[8:24])
        if rptr + rsize > len(data):
            raise PEFormatError(
                f"section {name.rstrip(chr(0))!r} raw data extends past end of file"
            )
        sections.append(_SectionEntry(name, vsize, vaddr, rsize, rptr))
        section_names.append(name)

    imports: dict[str, tuple[str, ...]] = {}
    if import_rva and import_size:
        imports = _parse_imports(data, sections, import_rva)

    return PEInfo(
        machine_type=machine,
        n_sections=n_sections,
        os_version=os_major * 10 + os_minor,
        linker_version=linker_major * 10 + linker_minor,
        subsystem=subsystem,
        section_names=tuple(section_names),
        imported_dlls=tuple(imports.keys()),
        imports=imports,
        file_size=len(data),
    )
