"""Builder: :class:`PESpec` + content seed -> a real PE image (bytes).

The builder emits byte-exact, parseable PE32 images: DOS header, COFF
header, optional header, section table, and a walkable import directory.
Section payloads are filled from a deterministic stream derived from the
*content seed*, so:

* same spec + same seed  -> identical bytes (same MD5),
* same spec + new seed   -> different bytes, **identical headers and
  size** — exactly the mutation scope of Allaple-style polymorphic
  engines that EPM's μ features are designed to survive.
"""

from __future__ import annotations

import random
import struct

import numpy as np

from repro.peformat.structures import (
    FILE_ALIGNMENT,
    PESpec,
    SECTION_ALIGNMENT,
)
from repro.util.hashing import stable_hash64
from repro.util.rng import derive_seed, spawn_rng
from repro.util.validation import require

_DOS_HEADER_SIZE = 0x40
_PE_OFFSET = 0x80
_COFF_SIZE = 20
_OPTIONAL_HEADER_SIZE = 224  # PE32 with 16 data directories
_SECTION_HEADER_SIZE = 40
_IMAGE_BASE = 0x0040_0000

_DOS_STUB_TEXT = b"This program cannot be run in DOS mode.\r\r\n$"


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _headers_size(n_sections: int) -> int:
    raw = _PE_OFFSET + 4 + _COFF_SIZE + _OPTIONAL_HEADER_SIZE
    raw += n_sections * _SECTION_HEADER_SIZE
    return _align(raw, FILE_ALIGNMENT)


def _import_blob(spec: PESpec, base_rva: int) -> tuple[bytes, int]:
    """Build the import directory for ``spec`` assuming it lands at ``base_rva``.

    Returns ``(blob, descriptor_table_size)``.  Layout: descriptor table,
    DLL name strings, OriginalFirstThunk arrays, FirstThunk arrays,
    hint/name entries.
    """
    dlls = list(spec.imports.items())
    n_desc = len(dlls) + 1  # +1 null terminator descriptor
    desc_size = n_desc * 20

    # Pre-compute the layout offsets (relative to blob start).
    offset = desc_size
    name_offsets: list[int] = []
    for dll, _symbols in dlls:
        name_offsets.append(offset)
        offset += len(dll.encode("latin-1")) + 1
    offset = _align(offset, 4)
    oft_offsets: list[int] = []
    for _dll, symbols in dlls:
        oft_offsets.append(offset)
        offset += (len(symbols) + 1) * 4
    ft_offsets: list[int] = []
    for _dll, symbols in dlls:
        ft_offsets.append(offset)
        offset += (len(symbols) + 1) * 4
    hint_offsets: dict[tuple[int, int], int] = {}
    for i, (_dll, symbols) in enumerate(dlls):
        for j, symbol in enumerate(symbols):
            hint_offsets[(i, j)] = offset
            entry_len = 2 + len(symbol.encode("latin-1")) + 1
            offset += entry_len + (entry_len % 2)  # keep entries 2-aligned

    blob = bytearray(offset)
    # Descriptor table.
    for i, (_dll, _symbols) in enumerate(dlls):
        struct.pack_into(
            "<IIIII",
            blob,
            i * 20,
            base_rva + oft_offsets[i],  # OriginalFirstThunk
            0,  # TimeDateStamp
            0,  # ForwarderChain
            base_rva + name_offsets[i],  # Name
            base_rva + ft_offsets[i],  # FirstThunk
        )
    # (terminator descriptor stays all-zero)
    # DLL names.
    for i, (dll, _symbols) in enumerate(dlls):
        encoded = dll.encode("latin-1") + b"\x00"
        blob[name_offsets[i] : name_offsets[i] + len(encoded)] = encoded
    # Thunk arrays (OFT and FT identical) and hint/name entries.
    for i, (_dll, symbols) in enumerate(dlls):
        for j, symbol in enumerate(symbols):
            entry_rva = base_rva + hint_offsets[(i, j)]
            struct.pack_into("<I", blob, oft_offsets[i] + j * 4, entry_rva)
            struct.pack_into("<I", blob, ft_offsets[i] + j * 4, entry_rva)
            encoded = symbol.encode("latin-1") + b"\x00"
            pos = hint_offsets[(i, j)]
            struct.pack_into("<H", blob, pos, j)  # hint = ordinal index
            blob[pos + 2 : pos + 2 + len(encoded)] = encoded
        # (terminator thunk entries stay zero)
    return bytes(blob), desc_size


def minimum_file_size(spec: PESpec) -> int:
    """Smallest ``file_size`` :func:`build_pe` accepts for ``spec``.

    Headers plus one file-alignment unit per leading section plus the
    aligned import directory in the last section.
    """
    blob, _ = _import_blob(spec, 0)
    return (
        _headers_size(spec.n_sections)
        + (spec.n_sections - 1) * FILE_ALIGNMENT
        + _align(max(len(blob), 1), FILE_ALIGNMENT)
    )


#: Per-spec header/layout templates keyed by ``id(spec)``.  Everything
#: up to the section payload fill is a pure function of the spec, and
#: the landscape generator rebuilds the *same* spec object for every
#: polymorphic instance of a variant — so the template computes once per
#: spec instead of once per binary.  The cache holds a strong reference
#: to the spec (keeping its id stable) and is cleared wholesale at the
#: cap, which bounds memory under REPACK-style per-event spec churn.
_TEMPLATE_CACHE: dict[int, tuple[PESpec, bytes, tuple[tuple[int, int], ...]]] = {}
_TEMPLATE_CACHE_MAX = 256


def _pe_template(spec: PESpec) -> tuple[bytes, tuple[tuple[int, int], ...]]:
    """Validated image template plus the payload fill regions for ``spec``.

    The template is the full ``spec.file_size`` image with headers,
    section table and import directory in place and payload regions
    zeroed; ``regions`` lists the non-empty ``(start, length)`` spans to
    fill, in the exact order the scalar builder drew them.
    """
    cached = _TEMPLATE_CACHE.get(id(spec))
    if cached is not None and cached[0] is spec:
        return cached[1], cached[2]
    template, regions = _build_template(spec)
    if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_MAX:
        _TEMPLATE_CACHE.clear()
    _TEMPLATE_CACHE[id(spec)] = (spec, template, regions)
    return template, regions


def _build_template(spec: PESpec) -> tuple[bytes, tuple[tuple[int, int], ...]]:
    require(
        spec.file_size % FILE_ALIGNMENT == 0,
        f"file_size must be a multiple of {FILE_ALIGNMENT}, got {spec.file_size}",
    )
    min_size = minimum_file_size(spec)
    require(
        spec.file_size >= min_size,
        f"file_size {spec.file_size} below minimum {min_size} for this spec",
    )

    n = spec.n_sections
    headers_size = _headers_size(n)
    payload_total = spec.file_size - headers_size

    # Compute the import blob assuming it starts at the last section's RVA;
    # the RVA depends only on section *virtual* sizes, which depend on raw
    # sizes, so lay out raw sizes first with a placeholder, then recompute.
    probe_blob, _ = _import_blob(spec, 0)
    import_raw = _align(max(len(probe_blob), 1), FILE_ALIGNMENT)

    if n == 1:
        raw_sizes = [payload_total]
    else:
        share = (payload_total - import_raw) // (n - 1) // FILE_ALIGNMENT * FILE_ALIGNMENT
        share = max(share, FILE_ALIGNMENT)
        raw_sizes = [share] * (n - 1)
        raw_sizes.append(payload_total - share * (n - 1))
    require(raw_sizes[-1] >= import_raw, "last section cannot hold the import table")

    # Virtual layout: sections at consecutive section-alignment boundaries.
    virtual_addrs: list[int] = []
    cursor = SECTION_ALIGNMENT
    for raw in raw_sizes:
        virtual_addrs.append(cursor)
        cursor += _align(max(raw, 1), SECTION_ALIGNMENT)
    size_of_image = cursor

    import_rva = virtual_addrs[-1]
    blob, _desc_size = _import_blob(spec, import_rva)
    import_dir_size = (spec.n_dlls + 1) * 20

    image = bytearray(spec.file_size)

    # --- DOS header + stub ---------------------------------------------
    image[0:2] = b"MZ"
    struct.pack_into("<I", image, 0x3C, _PE_OFFSET)
    stub = _DOS_STUB_TEXT[: _PE_OFFSET - _DOS_HEADER_SIZE]
    image[_DOS_HEADER_SIZE : _DOS_HEADER_SIZE + len(stub)] = stub

    # --- PE signature + COFF header -------------------------------------
    image[_PE_OFFSET : _PE_OFFSET + 4] = b"PE\x00\x00"
    timestamp = stable_hash64(repr(spec), salt="pe-timestamp") & 0x7FFF_FFFF
    characteristics = 0x0102  # EXECUTABLE_IMAGE | 32BIT_MACHINE
    struct.pack_into(
        "<HHIIIHH",
        image,
        _PE_OFFSET + 4,
        spec.machine_type,
        n,
        timestamp,
        0,  # PointerToSymbolTable
        0,  # NumberOfSymbols
        _OPTIONAL_HEADER_SIZE,
        characteristics,
    )

    # --- Optional header -------------------------------------------------
    opt = _PE_OFFSET + 4 + _COFF_SIZE
    size_of_code = sum(
        raw for raw, sec in zip(raw_sizes, spec.sections) if sec.characteristics & 0x20
    )
    size_of_init = sum(
        raw for raw, sec in zip(raw_sizes, spec.sections) if sec.characteristics & 0x40
    )
    struct.pack_into(
        "<HBBIIIIII",
        image,
        opt,
        0x10B,  # PE32 magic
        spec.linker_major,
        spec.linker_minor,
        size_of_code,
        size_of_init,
        0,  # SizeOfUninitializedData
        virtual_addrs[0],  # AddressOfEntryPoint
        virtual_addrs[0],  # BaseOfCode
        virtual_addrs[-1],  # BaseOfData
    )
    struct.pack_into(
        "<IIIHHHHHHIIIIHHIIIIII",
        image,
        opt + 28,
        _IMAGE_BASE,
        SECTION_ALIGNMENT,
        FILE_ALIGNMENT,
        spec.os_major,
        spec.os_minor,
        0,  # MajorImageVersion
        0,  # MinorImageVersion
        4,  # MajorSubsystemVersion
        0,  # MinorSubsystemVersion
        0,  # Win32VersionValue
        size_of_image,
        headers_size,
        0,  # CheckSum
        spec.subsystem,
        0,  # DllCharacteristics
        0x0010_0000,  # SizeOfStackReserve
        0x1000,  # SizeOfStackCommit
        0x0010_0000,  # SizeOfHeapReserve
        0x1000,  # SizeOfHeapCommit
        0,  # LoaderFlags
        16,  # NumberOfRvaAndSizes
    )
    # Data directories: only the import directory (index 1) is populated.
    data_dir = opt + 96
    struct.pack_into("<II", image, data_dir + 1 * 8, import_rva, import_dir_size)

    # --- Section table ----------------------------------------------------
    sec_table = opt + _OPTIONAL_HEADER_SIZE
    raw_ptr = headers_size
    raw_ptrs: list[int] = []
    for i, (sec, raw, vaddr) in enumerate(zip(spec.sections, raw_sizes, virtual_addrs)):
        entry = sec_table + i * _SECTION_HEADER_SIZE
        name_bytes = sec.name.encode("latin-1")[:8]
        image[entry : entry + len(name_bytes)] = name_bytes
        struct.pack_into(
            "<IIIIIIHHI",
            image,
            entry + 8,
            raw,  # VirtualSize (== raw size in our layout)
            vaddr,
            raw,  # SizeOfRawData
            raw_ptr,
            0,  # PointerToRelocations
            0,  # PointerToLinenumbers
            0,  # NumberOfRelocations
            0,  # NumberOfLinenumbers
            sec.characteristics,
        )
        raw_ptrs.append(raw_ptr)
        raw_ptr += raw

    # --- Section payload regions (import blob placed, fills pending) ------
    regions: list[tuple[int, int]] = []
    for i, (raw, ptr) in enumerate(zip(raw_sizes, raw_ptrs)):
        if i == n - 1:
            image[ptr : ptr + len(blob)] = blob
            fill_start, fill_len = ptr + len(blob), raw - len(blob)
        else:
            fill_start, fill_len = ptr, raw
        if fill_len > 0:
            regions.append((fill_start, fill_len))

    return bytes(image), tuple(regions)


#: Shared MT19937 bit generator the content fills stream from.  Its
#: state is transplanted per build (see :func:`_content_generator`);
#: image building is serial, so one module-level generator suffices.
_MT19937 = np.random.MT19937()


#: Whether numpy exposes the C ``init_by_array`` seeding shortcut used
#: by the fast path below (private but stable across numpy 1.17+).
_HAVE_LEGACY_SEEDING = hasattr(np.random.MT19937, "_legacy_seeding")


def _content_generator(content_seed: int) -> np.random.MT19937:
    """A numpy MT19937 positioned at the start of the content stream.

    ``random.Random`` and numpy's ``MT19937`` are the same generator,
    and both seed multi-word integers through ``init_by_array`` over the
    int's little-endian 32-bit limbs — so seeding numpy with the same
    key yields the exact word sequence ``spawn_rng(content_seed,
    "pe-content")`` would produce, while the bulk draws run at C speed
    instead of through ``randbytes``'s big-integer path.  Seeds below
    2**32 (one-word keys, which numpy seeds differently) and numpy
    builds without the seeding shortcut fall back to transplanting the
    stdlib-seeded 624-word state; all paths are byte-identical.
    """
    seed = derive_seed(content_seed, "pe-content")
    if _HAVE_LEGACY_SEEDING and seed >> 32:
        key = np.array([seed & 0xFFFFFFFF, seed >> 32], dtype=np.uint32)
        _MT19937._legacy_seeding(key)
        return _MT19937
    state = random.Random(seed).getstate()[1]
    _MT19937.state = {
        "bit_generator": "MT19937",
        "state": {
            "key": np.fromiter(state, np.uint32, count=625)[:624],
            "pos": state[624],
        },
    }
    return _MT19937


def _fill_bytes(generator: np.random.MT19937, n: int) -> bytes:
    """The next ``n`` bytes of the content stream.

    Byte-identical to ``random.Random.randbytes(n)`` on the same MT
    state: ``randbytes`` is ``getrandbits(8 * n)`` serialized
    little-endian, i.e. ``ceil(n / 4)`` raw 32-bit words in draw order,
    with the final partial word's *high* bits shifted down (that is how
    ``getrandbits`` truncates its top word).
    """
    m = (n + 3) >> 2
    data = generator.random_raw(m).astype("<u4").tobytes()
    partial = n & 3
    if not partial:
        return data
    tail = int.from_bytes(data[-4:], "little") >> (32 - (partial << 3))
    return data[: (m - 1) << 2] + tail.to_bytes(partial, "little")


def build_pe(spec: PESpec, content_seed: int) -> bytes:
    """Emit a PE image for ``spec`` with payload drawn from ``content_seed``.

    The image is exactly ``spec.file_size`` bytes long (the spec's file
    size must be a multiple of the 512-byte file alignment, as real
    linker output is) and parses back to the spec's header features via
    :func:`repro.peformat.parse_pe`.  The spec-only part of the image
    comes from a per-spec template (see :data:`_TEMPLATE_CACHE`); only
    the payload fill is drawn per call, in the same region order and
    lengths as the unbatched builder, so output bytes are unchanged.
    """
    template, regions = _pe_template(spec)
    image = bytearray(template)
    generator = _content_generator(content_seed)
    for fill_start, fill_len in regions:
        image[fill_start : fill_start + fill_len] = _fill_bytes(generator, fill_len)
    return bytes(image)
