"""Declarative PE structure descriptions and parsed-header records.

:class:`PESpec` is what a malware *codebase* looks like: the builder
turns a spec plus a content seed into bytes; a change to the spec models
a recompilation or patch (new linker version, different size, new
imports), while a change to the content seed alone models a polymorphic
mutation that EPM's header features are designed to see through.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.util.validation import require

#: COFF machine types (subset).
MACHINE_I386 = 0x14C  # decimal 332, the value quoted in the paper's M-cluster 13
MACHINE_AMD64 = 0x8664

#: Section characteristic flags (subset of IMAGE_SCN_*).
SCN_CODE = 0x00000020
SCN_INITIALIZED_DATA = 0x00000040
SCN_MEM_EXECUTE = 0x20000000
SCN_MEM_READ = 0x40000000
SCN_MEM_WRITE = 0x80000000

#: Subsystem values.
SUBSYSTEM_GUI = 2
SUBSYSTEM_CUI = 3

FILE_ALIGNMENT = 0x200
SECTION_ALIGNMENT = 0x1000


class PEFormatError(ValueError):
    """Raised by the parser on malformed or truncated PE images.

    Mirrors ``pefile.PEFormatError``: truncated downloads in the dataset
    surface as this error and are recorded as non-parseable samples.
    """


@dataclass(frozen=True)
class SectionSpec:
    """One section of a PE spec.

    ``name`` is at most 8 bytes once encoded; shorter names are padded
    with NULs exactly as in the on-disk section table (the paper quotes
    section names with explicit ``\\x00`` padding).
    """

    name: str
    characteristics: int = SCN_CODE | SCN_MEM_EXECUTE | SCN_MEM_READ

    def __post_init__(self) -> None:
        require(len(self.name.encode("latin-1")) <= 8, f"section name too long: {self.name!r}")

    @property
    def padded_name(self) -> str:
        """The 8-byte NUL-padded name as it appears in the section table."""
        return self.name + "\x00" * (8 - len(self.name))


@dataclass(frozen=True)
class PESpec:
    """Structural description of a PE binary (a codebase's shape).

    Fields map one-to-one onto the μ-dimension features of Table 1 in the
    paper.  ``linker_version`` packs major/minor as ``major*10 + minor``
    digits the way the paper quotes them (e.g. 92 = linker 9.2);
    ``os_version`` likewise (64 = OS version 6.4... the paper quotes the
    raw packed value, which we preserve as an opaque integer feature).
    """

    machine_type: int = MACHINE_I386
    sections: tuple[SectionSpec, ...] = (
        SectionSpec(".text"),
        SectionSpec(".rdata", SCN_INITIALIZED_DATA | SCN_MEM_READ),
        SectionSpec(".data", SCN_INITIALIZED_DATA | SCN_MEM_READ | SCN_MEM_WRITE),
    )
    imports: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: {"KERNEL32.dll": ("GetProcAddress", "LoadLibraryA")}
    )
    os_version: int = 64
    linker_version: int = 92
    subsystem: int = SUBSYSTEM_GUI
    file_size: int = 59_904

    def __post_init__(self) -> None:
        require(len(self.sections) >= 1, "PESpec needs at least one section")
        require(self.file_size > 0, "file_size must be positive")
        require(self.linker_version >= 0, "linker_version must be >= 0")
        require(self.os_version >= 0, "os_version must be >= 0")
        # Freeze the imports mapping into a plain dict copy to guard mutation.
        object.__setattr__(self, "imports", dict(self.imports))

    @property
    def n_sections(self) -> int:
        """Number of sections (a Table 1 feature)."""
        return len(self.sections)

    @property
    def n_dlls(self) -> int:
        """Number of imported DLLs (a Table 1 feature)."""
        return len(self.imports)

    @property
    def linker_major(self) -> int:
        """Major linker version byte."""
        return self.linker_version // 10

    @property
    def linker_minor(self) -> int:
        """Minor linker version byte."""
        return self.linker_version % 10

    @property
    def os_major(self) -> int:
        """Major OS version field."""
        return self.os_version // 10

    @property
    def os_minor(self) -> int:
        """Minor OS version field."""
        return self.os_version % 10

    def with_size(self, file_size: int) -> "PESpec":
        """A copy with a different target file size (an Allaple-style patch)."""
        return replace(self, file_size=file_size)

    def with_linker(self, linker_version: int) -> "PESpec":
        """A copy recompiled with a different linker version."""
        return replace(self, linker_version=linker_version)

    def with_sections(self, names: Sequence[str]) -> "PESpec":
        """A copy with renamed sections (same count and characteristics)."""
        require(len(names) == len(self.sections), "must rename every section")
        new_sections = tuple(
            replace(sec, name=name) for sec, name in zip(self.sections, names)
        )
        return replace(self, sections=new_sections)

    def with_imports(self, imports: Mapping[str, Sequence[str]]) -> "PESpec":
        """A copy with a different import table."""
        frozen = {dll: tuple(symbols) for dll, symbols in imports.items()}
        return replace(self, imports=frozen)


@dataclass(frozen=True)
class PEInfo:
    """Header features recovered from a PE image by :func:`parse_pe`.

    This is the ``pefile``-shaped view the EPM feature extractor consumes.
    Section names keep their NUL padding, matching the raw section-table
    bytes the paper quotes for M-cluster 13.
    """

    machine_type: int
    n_sections: int
    os_version: int
    linker_version: int
    subsystem: int
    section_names: tuple[str, ...]
    imported_dlls: tuple[str, ...]
    imports: Mapping[str, tuple[str, ...]]
    file_size: int

    @property
    def n_dlls(self) -> int:
        """Number of imported DLLs."""
        return len(self.imported_dlls)

    @property
    def kernel32_symbols(self) -> tuple[str, ...]:
        """Symbols imported from KERNEL32.dll (a Table 1 feature)."""
        for dll, symbols in self.imports.items():
            if dll.upper() == "KERNEL32.DLL":
                return symbols
        return ()
