"""libmagic-style file-type strings.

The μ dimension of Table 1 includes "File type according to libmagic
signatures".  This module reproduces the signature strings libmagic emits
for the file classes present in the SGNET collection: PE executables
(GUI/console, i386/x86-64), bare MS-DOS executables, and unrecognisable
data (truncated downloads).
"""

from __future__ import annotations

import struct

from repro.peformat.structures import (
    MACHINE_AMD64,
    MACHINE_I386,
    SUBSYSTEM_CUI,
    SUBSYSTEM_GUI,
)

_MACHINE_NAMES = {
    MACHINE_I386: "Intel 80386 32-bit",
    MACHINE_AMD64: "x86-64",
}

_SUBSYSTEM_NAMES = {
    SUBSYSTEM_GUI: "GUI",
    SUBSYSTEM_CUI: "console",
}


def magic_type(data: bytes) -> str:
    """Return a libmagic-style type string for ``data``.

    >>> magic_type(b"\\x00\\x01")
    'data'
    """
    if len(data) < 2 or data[0:2] != b"MZ":
        return "data"
    if len(data) < 0x40:
        return "MS-DOS executable"
    (e_lfanew,) = struct.unpack("<I", data[0x3C:0x40])
    if e_lfanew + 26 > len(data) or data[e_lfanew : e_lfanew + 4] != b"PE\x00\x00":
        return "MS-DOS executable"
    (machine,) = struct.unpack("<H", data[e_lfanew + 4 : e_lfanew + 6])
    machine_name = _MACHINE_NAMES.get(machine, f"machine {machine:#x}")
    # Subsystem lives at optional-header offset 68 (PE32).
    subsystem_name = "unknown"
    opt_offset = e_lfanew + 24
    if opt_offset + 70 <= len(data):
        (subsystem,) = struct.unpack("<H", data[opt_offset + 68 : opt_offset + 70])
        subsystem_name = _SUBSYSTEM_NAMES.get(subsystem, f"subsystem {subsystem}")
    return (
        f"MS-DOS executable PE for MS Windows ({subsystem_name}) {machine_name}"
    )
