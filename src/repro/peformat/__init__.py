"""Synthetic Portable Executable (PE) model.

The malware dimension (μ) of EPM clustering is characterised almost
entirely by PE-header features (Table 1 of the paper): machine type,
number of sections, section names, linker version, imported DLLs and the
Kernel32 symbols referenced.  The paper extracted them with the
``pefile`` library from real binaries; here we provide

* :class:`PESpec`/:class:`SectionSpec` — a declarative description of a
  binary's *structure* (what a malware family's codebase looks like),
* :func:`build_pe` — a builder emitting real, byte-level PE images from a
  spec (with deterministic content derived from a content seed), and
* :func:`parse_pe` — a ``pefile``-like parser recovering a
  :class:`PEInfo` from bytes, used by the honeypot pipeline exactly where
  the paper used pefile.

Build → mutate-content → parse round-trips preserve the header features,
which is precisely the property Allaple-style polymorphism exhibits in
the wild and that EPM clustering exploits.
"""

from repro.peformat.structures import (
    MACHINE_AMD64,
    MACHINE_I386,
    PEFormatError,
    PEInfo,
    PESpec,
    SectionSpec,
)
from repro.peformat.builder import build_pe, minimum_file_size
from repro.peformat.parser import parse_pe
from repro.peformat.magic import magic_type

__all__ = [
    "MACHINE_AMD64",
    "MACHINE_I386",
    "PEFormatError",
    "PEInfo",
    "PESpec",
    "SectionSpec",
    "build_pe",
    "minimum_file_size",
    "parse_pe",
    "magic_type",
]
