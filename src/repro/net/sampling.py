"""Sampling strategies over the IPv4 space.

Two population signatures matter for the paper's Figure 5:

* **Widespread** — worm-infected hosts scattered over most of the
  routable space (:class:`UniformSampler`), because autonomous scanning
  worms infect victims wherever vulnerable hosts exist.
* **Concentrated** — bot populations clustered in a handful of specific
  networks (:class:`SubnetConcentratedSampler`), as observed for the
  IRC-controlled clusters.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.net.address import IPv4Address, Subnet
from repro.util.validation import require


def routable_slash8_blocks() -> list[int]:
    """First octets we treat as routable source space.

    Excludes 0/8, 10/8, 127/8, 169/8 (link-local host block), 172/8 and
    192/8 (containing the common private blocks — excluded wholesale to
    keep the model simple), 224/8 and above (multicast/reserved).
    """
    excluded = {0, 10, 127, 169, 172, 192}
    return [b for b in range(1, 224) if b not in excluded]


class AddressSampler(ABC):
    """Draws attacker source addresses for one population."""

    @abstractmethod
    def sample(self, rng: random.Random) -> IPv4Address:
        """Draw one source address."""

    def sample_many(self, rng: random.Random, count: int) -> list[IPv4Address]:
        """Draw ``count`` addresses (with replacement)."""
        require(count >= 0, "count must be >= 0")
        return [self.sample(rng) for _ in range(count)]

    def sample_distinct(
        self, rng: random.Random, count: int, *, max_tries: int = 50
    ) -> list[IPv4Address]:
        """Draw ``count`` distinct addresses; raises if the space is too small."""
        seen: set[int] = set()
        out: list[IPv4Address] = []
        tries = 0
        while len(out) < count:
            addr = self.sample(rng)
            if int(addr) in seen:
                tries += 1
                require(
                    tries < max_tries * max(count, 1),
                    "address space too small for requested distinct sample",
                )
                continue
            seen.add(int(addr))
            out.append(addr)
        return out


class UniformSampler(AddressSampler):
    """Uniform over the routable space — the widespread worm signature."""

    def __init__(self, blocks: Sequence[int] | None = None) -> None:
        self._blocks = list(blocks) if blocks is not None else routable_slash8_blocks()
        require(len(self._blocks) > 0, "UniformSampler needs at least one /8 block")
        for b in self._blocks:
            require(0 <= b <= 255, f"bad /8 block {b}")

    @property
    def blocks(self) -> list[int]:
        """The /8 blocks addresses are drawn from."""
        return list(self._blocks)

    def sample(self, rng: random.Random) -> IPv4Address:
        block = rng.choice(self._blocks)
        return IPv4Address((block << 24) | rng.getrandbits(24))


class SubnetConcentratedSampler(AddressSampler):
    """Concentrated in a few subnets — the bot-population signature.

    With probability ``leak`` a draw falls back to the uniform routable
    space, modelling occasional members outside the home networks.
    """

    def __init__(self, subnets: Sequence[Subnet], *, leak: float = 0.0) -> None:
        require(len(subnets) > 0, "need at least one home subnet")
        require(0.0 <= leak <= 1.0, "leak must be a probability")
        self._subnets = list(subnets)
        self._leak = leak
        self._fallback = UniformSampler()

    @property
    def subnets(self) -> list[Subnet]:
        """The home subnets of the population."""
        return list(self._subnets)

    def sample(self, rng: random.Random) -> IPv4Address:
        if self._leak > 0 and rng.random() < self._leak:
            return self._fallback.sample(rng)
        subnet = rng.choice(self._subnets)
        return subnet.nth(rng.randrange(subnet.size))
