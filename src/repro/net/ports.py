"""TCP port registry for the services involved in observed attacks.

The SGNET deployment observed server-side code injections against a small
set of Windows services (the epsilon dimension records the destination
port), and shellcodes instructed victims to fetch malware over a small
set of download channels (the pi dimension records the involved port).
"""

from __future__ import annotations

#: Service ports seen on the exploitation side of the dataset.
KNOWN_SERVICE_PORTS: dict[int, str] = {
    135: "epmap (MS-RPC endpoint mapper)",
    139: "netbios-ssn",
    445: "microsoft-ds (SMB)",
    1025: "msrpc-alt",
    2967: "symantec-av",
    5000: "upnp",
    21: "ftp",
    80: "http",
    69: "tftp",
    6667: "irc",
    9988: "allaple-push",
}


def service_name(port: int) -> str:
    """Human-readable service name for a port, or ``tcp/<port>``."""
    return KNOWN_SERVICE_PORTS.get(port, f"tcp/{port}")
