"""IPv4 addresses and subnets as lightweight value types.

Addresses are plain ``int`` subclasses (32-bit), so they are hashable,
orderable, storable in numpy arrays and JSON-serializable via ``int`` —
while still rendering in dotted-quad form for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

_MAX_IPV4 = (1 << 32) - 1


def ip_to_string(value: int) -> str:
    """Render a 32-bit integer as dotted-quad.

    >>> ip_to_string(0x01020304)
    '1.2.3.4'
    """
    require(0 <= value <= _MAX_IPV4, f"not a 32-bit IPv4 value: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_from_string(text: str) -> "IPv4Address":
    """Parse dotted-quad text into an :class:`IPv4Address`.

    >>> int(ip_from_string('1.2.3.4')) == 0x01020304
    True
    """
    parts = text.strip().split(".")
    require(len(parts) == 4, f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        require(part.isdigit(), f"not a dotted quad: {text!r}")
        octet = int(part)
        require(0 <= octet <= 255, f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return IPv4Address(value)


class IPv4Address(int):
    """A 32-bit IPv4 address; an ``int`` that prints as dotted-quad."""

    def __new__(cls, value: int) -> "IPv4Address":
        require(0 <= value <= _MAX_IPV4, f"not a 32-bit IPv4 value: {value!r}")
        return super().__new__(cls, value)

    @property
    def dotted(self) -> str:
        """Dotted-quad rendering."""
        return ip_to_string(int(self))

    @property
    def slash8(self) -> int:
        """The /8 block (first octet) the address belongs to."""
        return (int(self) >> 24) & 0xFF

    @property
    def slash16(self) -> int:
        """The /16 prefix as an integer."""
        return int(self) >> 16

    @property
    def slash24(self) -> int:
        """The /24 prefix as an integer."""
        return int(self) >> 8

    def __str__(self) -> str:
        return self.dotted

    def __repr__(self) -> str:
        return f"IPv4Address({self.dotted!r})"


@dataclass(frozen=True)
class Subnet:
    """A CIDR block ``network/prefix_len``."""

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        require(0 <= self.prefix_len <= 32, f"bad prefix length {self.prefix_len}")
        require(0 <= self.network <= _MAX_IPV4, "network must be 32-bit")
        host_bits = 32 - self.prefix_len
        require(
            self.network & ((1 << host_bits) - 1) == 0 if host_bits < 32 else self.network == 0,
            f"network {ip_to_string(self.network)} has host bits set for /{self.prefix_len}",
        )

    @classmethod
    def parse(cls, text: str) -> "Subnet":
        """Parse ``a.b.c.d/len`` notation.

        >>> Subnet.parse('10.0.0.0/8').prefix_len
        8
        """
        addr, _, plen = text.partition("/")
        require(plen != "", f"missing prefix length in {text!r}")
        return cls(int(ip_from_string(addr)), int(plen))

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> IPv4Address:
        """Lowest address in the block."""
        return IPv4Address(self.network)

    @property
    def last(self) -> IPv4Address:
        """Highest address in the block."""
        return IPv4Address(self.network + self.size - 1)

    def contains(self, address: int) -> bool:
        """Whether ``address`` lies in the block."""
        return self.network <= int(address) < self.network + self.size

    def nth(self, offset: int) -> IPv4Address:
        """The ``offset``-th address of the block (0-based)."""
        require(0 <= offset < self.size, f"offset {offset} outside /{self.prefix_len}")
        return IPv4Address(self.network + offset)

    def __str__(self) -> str:
        return f"{ip_to_string(self.network)}/{self.prefix_len}"

    def __contains__(self, address: object) -> bool:
        return isinstance(address, int) and self.contains(address)
