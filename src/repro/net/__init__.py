"""IPv4 address space model.

The propagation-context analysis in the paper (Figure 5) hinges on *where*
attacking hosts live in the IPv4 space: self-propagating worms show
populations spread across most of the space, while bot populations
concentrate in a few networks.  This package provides the address model
and the sampling strategies the synthetic landscape uses to produce those
two signatures.
"""

from repro.net.address import (
    IPv4Address,
    Subnet,
    ip_from_string,
    ip_to_string,
)
from repro.net.sampling import (
    AddressSampler,
    SubnetConcentratedSampler,
    UniformSampler,
    routable_slash8_blocks,
)
from repro.net.ports import KNOWN_SERVICE_PORTS, service_name

__all__ = [
    "IPv4Address",
    "Subnet",
    "ip_from_string",
    "ip_to_string",
    "AddressSampler",
    "SubnetConcentratedSampler",
    "UniformSampler",
    "routable_slash8_blocks",
    "KNOWN_SERVICE_PORTS",
    "service_name",
]
