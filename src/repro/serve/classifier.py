"""The serving hot path: classify new events against a loaded model.

:class:`ServingClassifier` wraps a :class:`~repro.serve.model.ModelArtifact`
with one compiled :class:`~repro.core.pattern_index.PatternIndex` per
E/P/M dimension.  Single events go through the index's branch-and-bound
lookup (with the own-mask O(1) shortcut in front, exactly like
training-time classification); batches are transposed into per-dimension
code matrices and pushed through the masked-grouping batch kernel.
Both paths return the same pattern the linear scan would.

Instrumentation rides the ambient observability seams — the
``classify.requests`` / ``classify.batch_rows`` counters and the
``classify.latency`` quantile sketch on the active metrics registry,
``classify.start`` / ``classify.finish`` events on the active bus — so
serving runs are validated by the same ``repro obs validate``
catalogue as scenario runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.features import Dimension, default_feature_sets
from repro.core.pattern_index import PatternIndex
from repro.core.patterns import Pattern, format_pattern, mask_instance
from repro.egpm.columnar import Vocabulary
from repro.egpm.events import AttackEvent
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.serve.model import ModelArtifact, encode_pattern


@dataclass(frozen=True)
class Classification:
    """One event's assignment in one dimension."""

    dimension: Dimension
    pattern: Pattern
    cluster: int | None
    rendered: str

    def as_dict(self) -> dict:
        """JSONL-friendly form (tagged pattern encoding)."""
        return {
            "dimension": self.dimension.value,
            "pattern": encode_pattern(self.pattern),
            "cluster": self.cluster,
            "rendered": self.rendered,
        }


class ServingClassifier:
    """A model compiled and ready to classify events."""

    def __init__(self, model: ModelArtifact) -> None:
        self.model = model
        self.feature_sets = default_feature_sets()
        self._indexes: dict[Dimension, PatternIndex] = {}
        for dimension in Dimension:
            self._indexes[dimension] = PatternIndex.compile(
                model.pattern_set(dimension), model.invariants(dimension)
            )

    def index(self, dimension: Dimension) -> PatternIndex:
        """The compiled index of one dimension."""
        return self._indexes[dimension]

    def _classification(self, dimension: Dimension, pattern: Pattern) -> Classification:
        return Classification(
            dimension=dimension,
            pattern=pattern,
            cluster=self.model.cluster_of_pattern(dimension, pattern),
            rendered=format_pattern(pattern, self.model.feature_names(dimension)),
        )

    def classify_values(
        self, dimension: Dimension, values: Sequence[Hashable]
    ) -> Classification:
        """Classify one raw feature tuple in one dimension."""
        registry = obs_metrics.active()
        started = time.perf_counter()
        invariants = self.model.invariants(dimension)
        pattern_set = self.model.pattern_set(dimension)
        masked = mask_instance(values, invariants)
        if masked in pattern_set:
            pattern = masked
        else:
            pattern = self._indexes[dimension].classify(values)
        registry.counter("classify.requests", dimension=dimension.value).inc()
        registry.sketch("classify.latency").observe(time.perf_counter() - started)
        return self._classification(dimension, pattern)

    def classify_event(self, event: AttackEvent) -> dict[str, Classification]:
        """Classify one event in every dimension that applies to it."""
        results: dict[str, Classification] = {}
        for dimension, feature_set in self.feature_sets.items():
            if not feature_set.applies_to(event):
                continue
            values = feature_set.extract(event)
            results[dimension.value] = self.classify_values(dimension, values)
        return results

    def classify_events(
        self, events: Sequence[AttackEvent]
    ) -> list[dict[str, Classification]]:
        """Batch path: per-dimension columnar transpose + batch kernel.

        Returns one ``{dimension: Classification}`` map per input
        event, in input order — element-for-element identical to
        calling :meth:`classify_event` on each event.
        """
        registry = obs_metrics.active()
        bus = obs_events.active_bus()
        started = time.perf_counter()
        bus.emit(
            "classify.start",
            model=self.model.model_id,
            events=len(events),
            mode="batch",
        )
        results: list[dict[str, Classification]] = [{} for _ in events]
        for dimension, feature_set in self.feature_sets.items():
            rows: list[int] = []
            vocabularies = [Vocabulary() for _ in feature_set.names]
            codes_rows: list[list[int]] = []
            for position, event in enumerate(events):
                if not feature_set.applies_to(event):
                    continue
                values = feature_set.extract(event)
                rows.append(position)
                codes_rows.append(
                    [
                        vocab.intern(value)
                        for vocab, value in zip(vocabularies, values)
                    ]
                )
            if not rows:
                continue
            codes = np.array(codes_rows, dtype=np.int64)
            index = self._indexes[dimension]
            ranks = index.batch_classify(codes, vocabularies)
            registry.counter(
                "classify.batch_rows", dimension=dimension.value
            ).inc(len(rows))
            registry.counter(
                "classify.requests", dimension=dimension.value
            ).inc(len(rows))
            for position, rank in zip(rows, ranks.tolist()):
                results[position][dimension.value] = self._classification(
                    dimension, index.pattern_of(rank)
                )
        seconds = time.perf_counter() - started
        registry.sketch("classify.latency").observe(seconds)
        bus.emit(
            "classify.finish",
            model=self.model.model_id,
            events=len(events),
            seconds=round(seconds, 6),
        )
        return results
