"""Classification serving: persisted model artifacts + the hot path.

The training side of the repo ends at a :class:`ScenarioRun`; this
package is the serving side.  :mod:`repro.serve.model` freezes a run's
E/P/M landscape into a content-addressed JSON artifact, and
:mod:`repro.serve.classifier` loads one and classifies new events
against it through the compiled
:class:`~repro.core.pattern_index.PatternIndex` — without rebuilding
the scenario.
"""
