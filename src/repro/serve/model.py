"""The persisted model artifact: a landscape frozen for serving.

A *model* is everything phase-4 classification needs, detached from
the scenario that trained it: per-dimension pattern sets (with their
discovery-time support — the tie-break key), invariant value sets,
training vocabularies, the behavioural-clustering LSH shape, and the
provenance pointers (scenario fingerprint + run-store run id) that say
exactly which run it came from.

The artifact is **schema-versioned** and **content-addressed**: the
``model_id`` is the first 16 hex digits of the canonical digest of the
payload with the volatile fields (``model_id`` itself, ``created_at``)
removed, the same convention the run store uses for run ids.  Two
exports of the same landscape therefore agree on ``model_id``
byte-for-byte, and ``repro obs validate --model`` recomputes the
digest to catch tampered or hand-edited artifacts.

Feature values are JSON-encoded through a small tagged scheme —
``{"*": true}`` for the wildcard, ``{"t": [...]}`` for tuples (PE
section names, imported DLLs), plain JSON for everything else — so a
load/save round trip reproduces the exact Python values pattern
matching compares against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Mapping

from repro.core.features import Dimension
from repro.core.invariants import InvariantStats
from repro.core.patterns import WILDCARD, Pattern, PatternSet, specificity
from repro.util.canonical import canonical_digest
from repro.util.clock import timestamp
from repro.util.validation import require

#: Model artifact schema version (bump on layout changes).
MODEL_SCHEMA = 1

#: Marker distinguishing model JSON from manifests and bench records.
MODEL_KIND = "repro-model"

#: Hex digits of the content digest kept as the model id (matches the
#: run store's run-id convention).
MODEL_ID_LENGTH = 16

#: Fields excluded from the content address (everything else gates it).
VOLATILE_FIELDS = ("model_id", "created_at")


def encode_value(value: Hashable) -> object:
    """One feature value (or :data:`WILDCARD`) as tagged JSON."""
    if value is WILDCARD:
        return {"*": True}
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    require(
        value is None or isinstance(value, (str, int, float, bool)),
        f"cannot encode feature value of type {type(value).__name__}",
    )
    return value


def decode_value(payload: object) -> Hashable:
    """Invert :func:`encode_value` exactly."""
    if isinstance(payload, Mapping):
        if payload.get("*") is True:
            return WILDCARD
        if "t" in payload:
            return tuple(decode_value(item) for item in payload["t"])
        raise ValueError(f"unknown tagged value {payload!r}")
    require(
        payload is None or isinstance(payload, (str, int, float, bool)),
        f"cannot decode feature value {payload!r}",
    )
    return payload


def encode_pattern(pattern: Pattern) -> list:
    """A pattern as a list of tagged values."""
    return [encode_value(value) for value in pattern]


def decode_pattern(payload: list) -> Pattern:
    """Invert :func:`encode_pattern`."""
    return tuple(decode_value(value) for value in payload)


def _dimension_payload(clustering, columns) -> dict:
    """One dimension's model section from its ``DimensionClustering``."""
    pattern_set: PatternSet = clustering.pattern_set
    invariants: InvariantStats = clustering.invariants
    patterns = []
    for pattern in pattern_set.patterns:
        patterns.append(
            {
                "pattern": encode_pattern(pattern),
                "support": pattern_set.support_of(pattern),
                "cluster": clustering.cluster_of_pattern(pattern),
            }
        )
    return {
        "feature_names": list(clustering.feature_names),
        "invariants": [
            sorted((encode_value(v) for v in values), key=repr)
            for values in invariants.invariants
        ],
        "invariant_support": [
            sorted(
                ([encode_value(v), count] for v, count in support.items()),
                key=repr,
            )
            for support in invariants.support
        ],
        "patterns": patterns,
        # Training-time per-feature vocabularies in code order: the
        # provenance record of every value the landscape actually saw
        # (the serving batch kernel interns its *own* vocabularies from
        # incoming events, so these are for audit, not lookup).
        "vocabularies": [
            [encode_value(v) for v in vocab.values()]
            for vocab in columns.vocabularies
        ],
    }


def model_content_id(payload: Mapping) -> str:
    """Content address of a model payload (volatile fields excluded).

    ``provenance.run_id`` is a *pointer* into one run store, not model
    content — the same landscape exported directly and via ``--run``
    must agree on ``model_id`` — so it is normalized out too.
    """
    stable = {k: v for k, v in payload.items() if k not in VOLATILE_FIELDS}
    provenance = stable.get("provenance")
    if isinstance(provenance, Mapping):
        stable["provenance"] = {
            k: v for k, v in provenance.items() if k != "run_id"
        }
    return canonical_digest(stable)[:MODEL_ID_LENGTH]


def build_model_payload(run, *, run_id: str | None = None) -> dict:
    """Freeze a finished :class:`ScenarioRun` into the model payload.

    ``run_id`` is the run-store id when the landscape came from a
    stored run (``repro model export --run``); ``None`` marks a direct
    export.  The scenario must have been run with a manifest (the CLI
    always does) so the provenance fingerprint is available.
    """
    require(run.manifest is not None, "model export needs a run manifest")
    config = run.config
    clustering = config.clustering
    columnar = run.dataset.to_columnar()
    payload = {
        "schema": MODEL_SCHEMA,
        "kind": MODEL_KIND,
        "created_at": timestamp(),
        "provenance": {
            "fingerprint": run.manifest.fingerprint,
            "run_id": run_id,
            "seed": run.seed,
            "weeks": config.n_weeks,
            "scale": config.scale,
        },
        "policy": {
            "min_instances": config.invariant_policy.min_instances,
            "min_sources": config.invariant_policy.min_sources,
            "min_sensors": config.invariant_policy.min_sensors,
        },
        "clustering": {
            "threshold": clustering.threshold,
            "bands": clustering.bands,
            "rows": clustering.rows,
            "minhash_seed": clustering.minhash_seed,
        },
        "dimensions": {
            dimension.value: _dimension_payload(
                run.epm.dimensions[dimension], columnar.dimensions[dimension]
            )
            for dimension in Dimension
        },
    }
    payload["model_id"] = model_content_id(payload)
    return payload


def validate_model(payload: Mapping) -> list[str]:
    """Structural + content-address errors; empty list means valid.

    Checks: schema/kind markers, the recomputed ``model_id``, per
    dimension the pattern arity against ``feature_names``, integer
    support, the all-wildcard root pattern (classification totality),
    and mask-consistency — every non-wildcard pattern value must be in
    its feature's invariant set, the precondition of the batch kernel.
    """
    errors: list[str] = []
    if payload.get("schema") != MODEL_SCHEMA:
        errors.append(
            f"model: schema is {payload.get('schema')!r}, expected {MODEL_SCHEMA}"
        )
    if payload.get("kind") != MODEL_KIND:
        errors.append(f"model: kind is {payload.get('kind')!r}, not {MODEL_KIND!r}")
    recomputed = model_content_id(payload)
    if payload.get("model_id") != recomputed:
        errors.append(
            f"model: model_id {payload.get('model_id')!r} does not match "
            f"the content digest {recomputed!r}"
        )
    provenance = payload.get("provenance")
    if not isinstance(provenance, Mapping) or not provenance.get("fingerprint"):
        errors.append("model: provenance.fingerprint missing")
    dimensions = payload.get("dimensions")
    if not isinstance(dimensions, Mapping):
        return errors + ["model: dimensions section missing"]
    for dimension in Dimension:
        section = dimensions.get(dimension.value)
        if not isinstance(section, Mapping):
            errors.append(f"model: dimension {dimension.value!r} missing")
            continue
        label = f"model: dimension {dimension.value!r}"
        names = section.get("feature_names")
        if not isinstance(names, list) or not names:
            errors.append(f"{label}: feature_names missing")
            continue
        invariant_lists = section.get("invariants")
        if not isinstance(invariant_lists, list) or len(invariant_lists) != len(names):
            errors.append(f"{label}: needs one invariant list per feature")
            continue
        try:
            invariant_sets = [
                {decode_value(v) for v in values} for values in invariant_lists
            ]
        except Exception as exc:  # noqa: BLE001 - collect, do not raise
            errors.append(f"{label}: undecodable invariant value ({exc})")
            continue
        patterns = section.get("patterns")
        if not isinstance(patterns, list) or not patterns:
            errors.append(f"{label}: patterns missing")
            continue
        saw_root = False
        for index, entry in enumerate(patterns):
            if not isinstance(entry, Mapping):
                errors.append(f"{label}: pattern {index} is not a mapping")
                continue
            try:
                pattern = decode_pattern(entry.get("pattern", []))
            except Exception as exc:  # noqa: BLE001 - collect, do not raise
                errors.append(f"{label}: pattern {index} undecodable ({exc})")
                continue
            if len(pattern) != len(names):
                errors.append(
                    f"{label}: pattern {index} arity {len(pattern)} != "
                    f"{len(names)} features"
                )
                continue
            if specificity(pattern) == 0:
                saw_root = True
            support = entry.get("support")
            if not isinstance(support, int) or isinstance(support, bool):
                errors.append(f"{label}: pattern {index} support not an integer")
            for feature, value in enumerate(pattern):
                if value is not WILDCARD and value not in invariant_sets[feature]:
                    errors.append(
                        f"{label}: pattern {index} value at feature "
                        f"{names[feature]!r} is not invariant "
                        "(mask-consistency violated)"
                    )
        if not saw_root:
            errors.append(
                f"{label}: no all-wildcard root pattern — classification "
                "would not be total"
            )
    return errors


class ModelArtifact:
    """A loaded model: payload plus decoded per-dimension structures."""

    def __init__(self, payload: Mapping) -> None:
        errors = validate_model(payload)
        require(not errors, "invalid model artifact: " + "; ".join(errors[:3]))
        self.payload = dict(payload)
        self._pattern_sets: dict[Dimension, PatternSet] = {}
        self._invariants: dict[Dimension, InvariantStats] = {}
        self._clusters: dict[Dimension, dict[Pattern, int]] = {}
        for dimension in Dimension:
            section = payload["dimensions"][dimension.value]
            supports: dict[Pattern, int] = {}
            clusters: dict[Pattern, int] = {}
            for entry in section["patterns"]:
                pattern = decode_pattern(entry["pattern"])
                supports[pattern] = entry["support"]
                if entry.get("cluster") is not None:
                    clusters[pattern] = int(entry["cluster"])
            self._pattern_sets[dimension] = PatternSet(supports)
            self._invariants[dimension] = InvariantStats(
                feature_names=list(section["feature_names"]),
                invariants=[
                    {decode_value(v) for v in values}
                    for values in section["invariants"]
                ],
                support=[
                    {decode_value(v): count for v, count in pairs}
                    for pairs in section.get("invariant_support", [])
                ]
                or [dict() for _ in section["feature_names"]],
            )
            self._clusters[dimension] = clusters

    @classmethod
    def from_run(cls, run, *, run_id: str | None = None) -> "ModelArtifact":
        """Export a finished scenario run as a model artifact."""
        return cls(build_model_payload(run, run_id=run_id))

    @classmethod
    def load(cls, path: str | Path) -> "ModelArtifact":
        """Load and validate a model JSON file."""
        return cls(json.loads(Path(path).read_text(encoding="utf-8")))

    def save(self, path: str | Path) -> Path:
        """Write the artifact as deterministic, key-sorted JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @property
    def model_id(self) -> str:
        """The content address (16 hex digits)."""
        return self.payload["model_id"]

    @property
    def fingerprint(self) -> str:
        """The training scenario's semantic config fingerprint."""
        return self.payload["provenance"]["fingerprint"]

    def pattern_set(self, dimension: Dimension) -> PatternSet:
        """The dimension's pattern set, ready for classification."""
        return self._pattern_sets[dimension]

    def invariants(self, dimension: Dimension) -> InvariantStats:
        """The dimension's invariant stats."""
        return self._invariants[dimension]

    def feature_names(self, dimension: Dimension) -> list[str]:
        """The dimension's feature names, in extraction order."""
        return self._invariants[dimension].feature_names

    def cluster_of_pattern(self, dimension: Dimension, pattern: Pattern) -> int | None:
        """Training-time cluster id of ``pattern``, if it had instances."""
        return self._clusters[dimension].get(pattern)
