"""Wall-clock stage profiling for the pipeline.

:class:`StageTimer` wraps each stage of a run in a context manager and
accumulates a :class:`StageTimings` record — the machine-readable
timing artifact carried on every
:class:`~repro.experiments.scenario.ScenarioRun` and emitted by the
benchmark session as ``BENCH_pipeline.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.util.validation import require


@dataclass(frozen=True)
class StageTiming:
    """One named stage and its wall-clock cost."""

    name: str
    seconds: float


@dataclass
class StageTimings:
    """Ordered per-stage wall times of one pipeline run."""

    stages: list[StageTiming] = field(default_factory=list)

    @property
    def total(self) -> float:
        """Sum of all recorded stage times."""
        return sum(stage.seconds for stage in self.stages)

    def seconds(self, name: str) -> float:
        """Total time recorded under ``name``.

        Raises :class:`KeyError` for a stage that was never recorded —
        a silent 0.0 made typos in stage names unobservable.  Use
        :meth:`get` when absence is an expected answer.
        """
        matched = [stage.seconds for stage in self.stages if stage.name == name]
        if not matched:
            raise KeyError(name)
        return sum(matched)

    def get(self, name: str, default: float = 0.0) -> float:
        """Total time recorded under ``name``, or ``default`` if absent."""
        try:
            return self.seconds(name)
        except KeyError:
            return default

    def as_dict(self) -> dict[str, float]:
        """Stage name -> seconds (repeated names accumulate)."""
        out: dict[str, float] = {}
        for stage in self.stages:
            out[stage.name] = out.get(stage.name, 0.0) + stage.seconds
        return out

    def render(self) -> str:
        """Human-readable timing table with per-stage shares."""
        if not self.stages:
            return "no stages recorded"
        total = self.total or 1.0
        width = max(len(stage.name) for stage in self.stages)
        lines = [
            f"{stage.name:<{width}}  {stage.seconds:9.3f} s  {stage.seconds / total:6.1%}"
            for stage in self.stages
        ]
        lines.append(f"{'total':<{width}}  {self.total:9.3f} s")
        return "\n".join(lines)


class StageTimer:
    """Records wall time per named stage of a run."""

    def __init__(self) -> None:
        self._timings = StageTimings()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one stage; nesting is allowed but stages may not recurse."""
        require(bool(name), "stage name must be non-empty")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timings.stages.append(StageTiming(name=name, seconds=elapsed))

    def timings(self) -> StageTimings:
        """The record accumulated so far (live view, not a copy)."""
        return self._timings
