"""Time handling for the observation period.

The paper analyses SGNET data from January 2008 to May 2009 and reports
activity in *weeks of activity* and day-resolution timelines (Figure 5).
Timestamps in the reproduction are integer seconds from an epoch, and
:class:`TimeGrid` converts between seconds, days and week buckets for a
configured observation window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

DAY_SECONDS = 86_400
WEEK_SECONDS = 7 * DAY_SECONDS


def week_index(timestamp: int, origin: int = 0) -> int:
    """Return the zero-based week bucket of ``timestamp`` relative to ``origin``."""
    return (timestamp - origin) // WEEK_SECONDS


@dataclass(frozen=True)
class TimeGrid:
    """An observation window [start, end) with day/week bucketing.

    The default window matches the paper: 74 weeks spanning January 2008
    to May 2009 (see :data:`PAPER_WINDOW`).
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        require(self.end > self.start, "TimeGrid end must be after start")

    @property
    def duration(self) -> int:
        """Window length in seconds."""
        return self.end - self.start

    @property
    def n_days(self) -> int:
        """Number of (possibly partial) day buckets in the window."""
        return -(-self.duration // DAY_SECONDS)

    @property
    def n_weeks(self) -> int:
        """Number of (possibly partial) week buckets in the window."""
        return -(-self.duration // WEEK_SECONDS)

    def contains(self, timestamp: int) -> bool:
        """Whether ``timestamp`` lies in the window."""
        return self.start <= timestamp < self.end

    def clamp(self, timestamp: int) -> int:
        """Clamp ``timestamp`` into the window (end-exclusive)."""
        return max(self.start, min(self.end - 1, timestamp))

    def day_of(self, timestamp: int) -> int:
        """Zero-based day bucket of ``timestamp``."""
        require(self.contains(timestamp), f"timestamp {timestamp} outside window")
        return (timestamp - self.start) // DAY_SECONDS

    def week_of(self, timestamp: int) -> int:
        """Zero-based week bucket of ``timestamp``."""
        require(self.contains(timestamp), f"timestamp {timestamp} outside window")
        return (timestamp - self.start) // WEEK_SECONDS

    def week_start(self, week: int) -> int:
        """Timestamp of the first second of week bucket ``week``."""
        require(0 <= week < self.n_weeks, f"week {week} outside window")
        return self.start + week * WEEK_SECONDS

    def subwindow(self, start_week: int, end_week: int) -> "TimeGrid":
        """Return the window covering week buckets [start_week, end_week)."""
        require(end_week > start_week, "subwindow must span at least one week")
        return TimeGrid(
            self.week_start(start_week),
            min(self.end, self.start + end_week * WEEK_SECONDS),
        )


#: The paper's observation period: Jan 2008 - May 2009, 74 weeks.
PAPER_WINDOW = TimeGrid(0, 74 * WEEK_SECONDS)
