"""Shared utilities: deterministic RNG streams, statistics, time grids,
hashing helpers, validation and plain-text table rendering.

Everything stochastic in the reproduction draws from named substreams of a
single master seed (see :mod:`repro.util.rng`), so every experiment is a
pure function of its seed.
"""

from repro.util.clock import fixed_timestamp, timestamp
from repro.util.rng import RandomSource, derive_seed, spawn_rng
from repro.util.stats import (
    burstiness,
    entropy,
    frequency,
    gini,
    jaccard,
    normalized_entropy,
    quantile,
)
from repro.util.hashing import md5_hex, stable_hash64
from repro.util.parallel import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    resolve_jobs,
)
from repro.util.timegrid import TimeGrid, WEEK_SECONDS, week_index
from repro.util.timing import StageTimer, StageTimings
from repro.util.tables import TextTable, format_histogram
from repro.util.validation import (
    ValidationError,
    require,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "burstiness",
    "fixed_timestamp",
    "timestamp",
    "entropy",
    "frequency",
    "gini",
    "jaccard",
    "normalized_entropy",
    "quantile",
    "RandomSource",
    "derive_seed",
    "spawn_rng",
    "md5_hex",
    "stable_hash64",
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "get_executor",
    "resolve_jobs",
    "StageTimer",
    "StageTimings",
    "TimeGrid",
    "WEEK_SECONDS",
    "week_index",
    "TextTable",
    "format_histogram",
    "ValidationError",
    "require",
    "require_positive",
    "require_probability",
    "require_type",
]
