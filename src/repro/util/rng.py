"""Deterministic random-number discipline.

Every stochastic component of the reproduction draws from a *named
substream* derived from one master seed.  Substreams are derived by
hashing the (seed, name) pair, so adding a new consumer of randomness
never perturbs the draws of existing consumers — the classic trap of
sharing one sequential ``random.Random`` across a large simulation.

Two front-ends are provided over the same derivation scheme:

* :func:`spawn_rng` returns a :class:`random.Random` for cheap scalar
  draws in pure-Python code paths.
* :class:`RandomSource` wraps a master seed and hands out both
  ``random.Random`` and ``numpy.random.Generator`` substreams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

import numpy as np

from repro.util.validation import require_type

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def _seed_hasher(master_seed: int) -> "hashlib._Hash":
    """A SHA-256 hasher pre-fed with the master seed's fixed prefix."""
    hasher = hashlib.sha256()
    hasher.update(master_seed.to_bytes(16, "little", signed=True))
    return hasher


def _update_names(hasher: "hashlib._Hash", names: tuple[str | int, ...]) -> None:
    """Feed length-prefixed name tokens into ``hasher``."""
    for name in names:
        token = (name if type(name) is str else str(name)).encode("utf-8")
        hasher.update(len(token).to_bytes(4, "little"))
        hasher.update(token)


def derive_seed(master_seed: int, *names: str | int) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a name path.

    The derivation is stable across processes and Python versions (it
    uses SHA-256, not ``hash()``), and collision-resistant over the name
    path.

    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    >>> derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
    True
    """
    require_type(master_seed, int, "master_seed")
    hasher = _seed_hasher(master_seed)
    _update_names(hasher, names)
    return int.from_bytes(hasher.digest()[:8], "little") & _MASK64


def spawn_rng(master_seed: int, *names: str | int) -> random.Random:
    """Return a ``random.Random`` seeded from the named substream."""
    return random.Random(derive_seed(master_seed, *names))


class RandomSource:
    """A master seed plus helpers to derive named substreams.

    Components receive a :class:`RandomSource` and call
    :meth:`child`/:meth:`rng`/:meth:`numpy` with their own names.  A
    child source prefixes all further derivations with its path, so the
    tree of names forms a hierarchical namespace of independent streams.
    """

    __slots__ = ("_seed", "_path", "_prefix")

    def __init__(self, seed: int, _path: tuple[str, ...] = ()) -> None:
        require_type(seed, int, "seed")
        self._seed = seed
        self._path = _path
        # The (seed, path) prefix of every derivation from this source
        # is constant, so it is hashed once here; per-draw derivations
        # resume from a cheap ``copy()`` of this hasher.  The resulting
        # digests are byte-identical to ``derive_seed(seed, *path, *n)``.
        self._prefix = _seed_hasher(seed)
        _update_names(self._prefix, _path)

    def _derive(self, names: tuple[str | int, ...]) -> int:
        hasher = self._prefix.copy()
        _update_names(hasher, names)
        return int.from_bytes(hasher.digest()[:8], "little") & _MASK64

    @property
    def seed(self) -> int:
        """The master seed this source was built from."""
        return self._seed

    @property
    def path(self) -> tuple[str, ...]:
        """The name path of this source relative to the master seed."""
        return self._path

    def child(self, *names: str | int) -> "RandomSource":
        """Return a source whose streams are namespaced under ``names``."""
        return RandomSource(self._seed, self._path + tuple(str(n) for n in names))

    def rng(self, *names: str | int) -> random.Random:
        """Return a ``random.Random`` for the named substream."""
        return random.Random(self._derive(names))

    def numpy(self, *names: str | int) -> np.random.Generator:
        """Return a ``numpy.random.Generator`` for the named substream."""
        return np.random.default_rng(self._derive(names))

    def choice(self, items: Sequence[T], *names: str | int) -> T:
        """Draw one element of ``items`` from the named substream."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self.rng(*names).choice(items)

    def shuffled(self, items: Iterable[T], *names: str | int) -> list[T]:
        """Return a new list with ``items`` shuffled by the named substream."""
        out = list(items)
        self.rng(*names).shuffle(out)
        return out

    def __getstate__(self) -> tuple[int, tuple[str, ...]]:
        # The cached prefix hasher is not picklable (and is pure
        # derived state); rebuild it on load.
        return (self._seed, self._path)

    def __setstate__(self, state: tuple[int, tuple[str, ...]]) -> None:
        self.__init__(*state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "/".join(self._path) or "<root>"
        return f"RandomSource(seed={self._seed}, path={path})"
