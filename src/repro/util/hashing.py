"""Hashing helpers used across the reproduction.

``md5_hex`` mirrors the paper's use of MD5 as the identity of a collected
malware binary.  ``stable_hash64`` provides a process-stable 64-bit hash
for strings (Python's builtin ``hash`` is salted per process and cannot
be used for reproducible simulation decisions).
"""

from __future__ import annotations

import hashlib


def md5_hex(data: bytes) -> str:
    """Return the hex MD5 digest of ``data`` (sample identity, as in SGNET)."""
    return hashlib.md5(data).hexdigest()


def sha1_hex(data: bytes) -> str:
    """Return the hex SHA-1 digest of ``data``."""
    return hashlib.sha1(data).hexdigest()


def stable_hash64(text: str, *, salt: str = "") -> int:
    """Return a process-stable unsigned 64-bit hash of ``text``.

    >>> stable_hash64("abc") == stable_hash64("abc")
    True
    >>> stable_hash64("abc") != stable_hash64("abd")
    True
    """
    digest = hashlib.sha256((salt + "\x00" + text).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
