"""The one injectable wall clock for emitted timestamps.

Every human-readable timestamp that lands in an emitted record — run
manifests (``created_at``), benchmark records (``generated_at``), run
store index entries — comes from :func:`timestamp` here, never from a
raw ``datetime.now()``/``time.strftime()`` at the call site.  That
keeps wall-clock state in exactly one seam, so tests (and reproducible
CI runs) can pin it:

* :func:`fixed_timestamp` freezes the clock for a block of code;
* the ``REPRO_FIXED_TIME`` environment variable freezes it for a whole
  process (what CI uses to produce byte-stable reference artifacts).

Simulation time never goes through this module — in-simulation
timestamps are integer seconds on :mod:`repro.util.timegrid` and carry
no wall-clock state at all.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

#: Environment variable that freezes :func:`timestamp` process-wide.
FIXED_TIME_ENV = "REPRO_FIXED_TIME"

#: The ISO-8601 layout every emitted timestamp uses (UTC, second
#: precision — deterministic across locales and timezones).
TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%SZ"

_fixed: str | None = None


def timestamp() -> str:
    """The current wall-clock timestamp, unless the clock is pinned.

    Resolution order: a :func:`fixed_timestamp` override, then
    ``$REPRO_FIXED_TIME``, then the real UTC clock rendered as
    :data:`TIMESTAMP_FORMAT`.
    """
    if _fixed is not None:
        return _fixed
    env = os.environ.get(FIXED_TIME_ENV)
    if env:
        return env
    return time.strftime(TIMESTAMP_FORMAT, time.gmtime())


@contextmanager
def fixed_timestamp(value: str) -> Iterator[str]:
    """Pin :func:`timestamp` to ``value`` for the duration of the block."""
    global _fixed
    previous = _fixed
    _fixed = value
    try:
        yield value
    finally:
        _fixed = previous
