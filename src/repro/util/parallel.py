"""Deterministic parallel execution backends.

Every embarrassingly-parallel stage of the pipeline (sandbox execution,
the three E/P/M dimension fits, exact-Jaccard verification of LSH
candidate pairs) funnels through one tiny abstraction: an *executor*
with an order-preserving, chunked :meth:`~Executor.map`.  Three backends
exist:

* ``serial``  — a plain loop; the reference semantics.
* ``thread``  — a thread pool; useful for stages that release the GIL
  and as a cheap way to exercise the concurrent code paths.
* ``process`` — a process pool; true CPU parallelism.  Mapped functions
  and their arguments must be picklable (module-level functions or
  :func:`functools.partial` over them).

Determinism contract: ``map`` always returns results in input order, and
work is split into chunks by *position* via :func:`plan_chunks` — a pure
function of the item count, identical on every backend and machine.  A
stage that is a pure function of its inputs therefore produces
bit-identical output on every backend — parallelism may never perturb
the :mod:`repro.util.rng` substream discipline, because no substream is
ever shared across work items.

Telemetry contract: chunk-level telemetry is also backend-independent.
Every chunk runs under a :func:`repro.obs.metrics.capture` registry —
in the caller's thread on the serial path, in the worker otherwise —
and the captured snapshot rides back with the chunk results, where the
coordinator merges it (in chunk order) into the ambient registry and
records ``executor.chunks`` / ``executor.items`` /
``executor.chunk_seconds``.  Metric totals produced inside mapped
functions therefore agree exactly across serial, thread and process
runs; nothing a worker records is dropped.  Events emitted by mapped
functions reach the ambient :class:`~repro.obs.events.EventBus` too:
directly on the serial and thread backends (the bus is thread-safe),
and over a per-``map`` multiprocessing queue on the process backend —
each pool worker gets a queue-backed bus installed at start-up, and the
parent drains and re-sequences the forwarded events.

Failure contract: a mapped function raising does not lose telemetry and
cannot hang the coordinator.  The failing worker flushes what it
buffered (partial chunk metrics come back with the error; queued events
were already delivered), the coordinator records an
``executor.worker_failures`` counter, emits a ``worker.failure`` event,
finishes draining every outstanding chunk, and re-raises the first
error in chunk order.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.util.validation import require

T = TypeVar("T")
R = TypeVar("R")

#: Recognised executor backend names, in preference order.
BACKENDS = ("serial", "thread", "process")

#: Upper bound on chunks per ``map`` call.  Deliberately a constant —
#: never derived from the worker count — so the chunk layout (and with
#: it every chunk-level metric and event) is a pure function of the
#: item count, identical across backends and machines.  32 chunks keep
#: per-chunk submission overhead (pickling, scheduling) low while
#: smoothing load imbalance for typical core counts; pools with more
#: than 32 workers are capped at one worker per chunk.
DEFAULT_CHUNK_COUNT = 32


def resolve_jobs(jobs: int = 0) -> int:
    """Worker count for a parallel backend; ``0`` means "all cores"."""
    require(jobs >= 0, "jobs must be >= 0 (0 = one worker per core)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def chunk_evenly(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks.

    Chunking is by position only, so the split is a pure function of
    ``(len(items), n_chunks)`` — the property the determinism contract
    rests on.  Empty chunks are never produced.

    >>> chunk_evenly([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    """
    require(n_chunks >= 1, "n_chunks must be >= 1")
    items = list(items)
    n_chunks = min(n_chunks, len(items)) or 1
    size, extra = divmod(len(items), n_chunks)
    chunks: list[list[T]] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < extra else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def plan_chunks(items: Sequence[T]) -> list[list[T]]:
    """The canonical chunk layout every backend uses for ``items``."""
    return chunk_evenly(items, DEFAULT_CHUNK_COUNT)


@dataclass
class _ChunkOutcome:
    """What one executed chunk sends back to the coordinator."""

    elapsed: float
    results: list = field(default_factory=list)
    #: Snapshot (dict form) of metrics recorded inside the chunk, or
    #: ``None`` when telemetry capture was off.
    metrics: dict | None = None
    #: The exception a mapped call raised, or ``None``.  Partial
    #: ``results``/``metrics`` up to the failure still ride along.
    error: Exception | None = None
    #: Peak RSS of the executing process after the chunk ran (kB), or
    #: ``None`` where :mod:`resource` is unavailable (non-Unix).
    rss_kb: float | None = None


def _peak_rss_kb() -> float | None:
    """This process's peak RSS in kilobytes (``None`` off-Unix)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return None
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _run_chunk(
    fn: Callable[[T], R], chunk: list[T], capture_telemetry: bool
) -> _ChunkOutcome:
    """Apply ``fn`` to one chunk (module-level so process pools can ship it).

    With ``capture_telemetry`` the chunk runs under a thread-local
    capture registry; the captured snapshot returns with the results so
    the coordinator can merge worker-side metrics exactly — this is how
    telemetry recorded inside worker threads/processes reaches the
    parent registry instead of being dropped.  Exceptions are caught
    and returned (never raised here), so partial telemetry survives a
    mid-chunk failure and the coordinator stays in control.
    """
    results: list[R] = []
    error: Exception | None = None
    started = time.perf_counter()
    if capture_telemetry:
        with obs_metrics.capture() as registry:
            try:
                for item in chunk:
                    results.append(fn(item))
            except Exception as exc:  # re-raised by the coordinator
                error = exc
        metrics = registry.snapshot().as_dict()
    else:
        metrics = None
        try:
            for item in chunk:
                results.append(fn(item))
        except Exception as exc:
            error = exc
    return _ChunkOutcome(
        elapsed=time.perf_counter() - started,
        results=results,
        metrics=metrics,
        error=error,
        rss_kb=_peak_rss_kb() if capture_telemetry else None,
    )


def _install_worker_bus(queue) -> None:
    """Process-pool initializer: route worker events into ``queue``.

    Runs once per worker process; every event emitted inside this
    worker is put on the queue immediately, so the parent sees it even
    if the worker later fails mid-chunk.
    """
    obs_events.activate_bus(
        obs_events.EventBus([obs_events.QueueTransport(queue)])
    )


def _finish_chunk(
    backend: str,
    index: int,
    n_chunks: int,
    n_items: int,
    outcome: _ChunkOutcome,
    registry,
    bus,
) -> None:
    """Merge one chunk's telemetry into the coordinator's registry/bus.

    The ``executor.*`` metrics are deliberately unlabelled: the chunk
    plan is backend-independent, so the totals must compare equal
    across serial/thread/process runs of the same scenario — a labelled
    key per backend would defeat exactly that check.  The backend still
    rides on every chunk event for human consumption.

    Resource watermarks merge here too: ``worker.peak_rss_kb`` is the
    max across every chunk's executing process, and
    ``executor.chunk_backlog`` is the peak count of planned-but-not-
    gathered chunks — both commutative max-merges, so the values do not
    depend on chunk completion order.
    """
    if outcome.metrics is not None:
        registry.merge_snapshot(outcome.metrics)
    registry.counter("executor.chunks").inc()
    registry.counter("executor.items").inc(n_items)
    registry.histogram("executor.chunk_seconds").observe(outcome.elapsed)
    registry.sketch("executor.chunk_seconds_sketch").observe(outcome.elapsed)
    registry.watermark("executor.chunk_backlog").update(n_chunks - index - 1)
    if outcome.rss_kb is not None:
        registry.watermark("worker.peak_rss_kb").update(outcome.rss_kb)
    bus.emit(
        "chunk.finish",
        backend=backend,
        chunk=index,
        items=n_items,
        seconds=round(outcome.elapsed, 6),
        rss_kb=outcome.rss_kb,
    )
    if outcome.error is not None:
        registry.counter("executor.worker_failures").inc()
        bus.emit(
            "worker.failure",
            backend=backend,
            chunk=index,
            error=f"{type(outcome.error).__name__}: {outcome.error}",
        )


def _map_inline(
    backend: str, fn: Callable[[T], R], chunks: list[list[T]], registry, bus
) -> list[R]:
    """Run planned chunks in the calling thread (serial / one-worker pools)."""
    capture = registry.recording
    results: list[R] = []
    for index, chunk in enumerate(chunks):
        outcome = _run_chunk(fn, chunk, capture)
        _finish_chunk(backend, index, len(chunks), len(chunk), outcome, registry, bus)
        if outcome.error is not None:
            raise outcome.error
        results.extend(outcome.results)
    return results


class SerialExecutor:
    """The reference backend: a plain in-order loop over planned chunks."""

    backend = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, in order, chunk by chunk."""
        items = list(items)
        chunks = plan_chunks(items)
        if not chunks:
            return []
        registry = obs_metrics.active()
        bus = obs_events.active_bus()
        bus.emit(
            "chunk.plan", backend=self.backend, chunks=len(chunks), items=len(items)
        )
        return _map_inline(self.backend, fn, chunks, registry, bus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class _PoolExecutor:
    """Shared chunk-submit/ordered-gather logic of the pooled backends."""

    backend = "pool"
    _pool_cls: type

    def __init__(self, jobs: int = 0) -> None:
        self.jobs = resolve_jobs(jobs)

    def _event_channel(self, bus) -> tuple[object | None, dict]:
        """Optional worker->parent event queue and pool kwargs to set it up."""
        return None, {}

    @staticmethod
    def _drain_events(queue, bus, *, final: bool = False) -> None:
        """Forward queued worker events onto the coordinator's bus.

        The count drained in one pass is the worker->parent queue's
        observed depth; its peak lands in the ``executor.event_queue_depth``
        watermark so a backed-up channel is visible after the run.
        """
        if queue is None:
            return
        drained = 0
        while True:
            try:
                payload = queue.get(timeout=0.05) if final else queue.get_nowait()
            except queue_module.Empty:
                break
            bus.forward(payload)
            drained += 1
        if drained:
            obs_metrics.active().watermark("executor.event_queue_depth").update(
                drained
            )

    @staticmethod
    def _close_channel(queue) -> None:
        if queue is not None:
            queue.close()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        chunks = plan_chunks(items)
        if not chunks:
            return []
        registry = obs_metrics.active()
        bus = obs_events.active_bus()
        bus.emit(
            "chunk.plan", backend=self.backend, chunks=len(chunks), items=len(items)
        )
        if self.jobs == 1 or len(chunks) == 1:
            return _map_inline(self.backend, fn, chunks, registry, bus)
        capture = registry.recording
        queue, pool_kwargs = self._event_channel(bus)
        results: list[R] = []
        first_error: Exception | None = None
        try:
            with self._pool_cls(
                max_workers=min(self.jobs, len(chunks)), **pool_kwargs
            ) as pool:
                futures = [
                    pool.submit(_run_chunk, fn, chunk, capture) for chunk in chunks
                ]
                # Gather in submission order: every outstanding chunk is
                # drained (telemetry included) even after a failure, then
                # the first error in chunk order is re-raised — a worker
                # exception can never hang the coordinator or silently
                # drop another chunk's telemetry.
                for index, (chunk, future) in enumerate(zip(chunks, futures)):
                    outcome = future.result()
                    self._drain_events(queue, bus)
                    _finish_chunk(
                        self.backend,
                        index,
                        len(chunks),
                        len(chunk),
                        outcome,
                        registry,
                        bus,
                    )
                    if outcome.error is not None:
                        if first_error is None:
                            first_error = outcome.error
                    else:
                        results.extend(outcome.results)
        finally:
            self._drain_events(queue, bus, final=True)
            self._close_channel(queue)
        if first_error is not None:
            raise first_error
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; mapped functions may be closures.

    Worker threads share the coordinator's process, so their metric
    captures use the thread-local seam in :mod:`repro.obs.metrics` and
    their events go straight to the ambient bus — no queue needed.
    """

    backend = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; mapped functions and items must pickle.

    When the ambient event bus is recording, each ``map`` creates a
    multiprocessing queue and installs a queue-backed bus in every pool
    worker (:func:`_install_worker_bus`), so worker-side events are
    forwarded to the parent and re-sequenced; worker-side metrics ride
    back with each chunk's results either way.
    """

    backend = "process"
    _pool_cls = ProcessPoolExecutor

    def _event_channel(self, bus) -> tuple[object | None, dict]:
        if not bus.recording:
            return None, {}
        queue = multiprocessing.get_context().Queue()
        return queue, {"initializer": _install_worker_bus, "initargs": (queue,)}


#: Any of the three backends (they share the duck-typed ``map`` API).
Executor = SerialExecutor | ThreadExecutor | ProcessExecutor


def get_executor(backend: str = "serial", jobs: int = 0) -> Executor:
    """Build the named backend; ``jobs=0`` means one worker per core."""
    require(backend in BACKENDS, f"unknown executor backend {backend!r}")
    if backend == "thread":
        executor: Executor = ThreadExecutor(jobs)
    elif backend == "process":
        executor = ProcessExecutor(jobs)
    else:
        executor = SerialExecutor()
    obs_metrics.active().gauge("executor.jobs", backend=backend).set(executor.jobs)
    return executor
