"""Deterministic parallel execution backends.

Every embarrassingly-parallel stage of the pipeline (sandbox execution,
the three E/P/M dimension fits, exact-Jaccard verification of LSH
candidate pairs) funnels through one tiny abstraction: an *executor*
with an order-preserving, chunked :meth:`~Executor.map`.  Three backends
exist:

* ``serial``  — a plain loop; the reference semantics.
* ``thread``  — a thread pool; useful for stages that release the GIL
  and as a cheap way to exercise the concurrent code paths.
* ``process`` — a process pool; true CPU parallelism.  Mapped functions
  and their arguments must be picklable (module-level functions or
  :func:`functools.partial` over them).

Determinism contract: ``map`` always returns results in input order, and
work is split into chunks by *position*, never by completion time.  A
stage that is a pure function of its inputs therefore produces
bit-identical output on every backend — parallelism may never perturb
the :mod:`repro.util.rng` substream discipline, because no substream is
ever shared across work items.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.util.validation import require

T = TypeVar("T")
R = TypeVar("R")

#: Recognised executor backend names, in preference order.
BACKENDS = ("serial", "thread", "process")


def resolve_jobs(jobs: int = 0) -> int:
    """Worker count for a parallel backend; ``0`` means "all cores"."""
    require(jobs >= 0, "jobs must be >= 0 (0 = one worker per core)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def chunk_evenly(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks.

    Chunking is by position only, so the split is a pure function of
    ``(len(items), n_chunks)`` — the property the determinism contract
    rests on.  Empty chunks are never produced.

    >>> chunk_evenly([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    """
    require(n_chunks >= 1, "n_chunks must be >= 1")
    items = list(items)
    n_chunks = min(n_chunks, len(items)) or 1
    size, extra = divmod(len(items), n_chunks)
    chunks: list[list[T]] = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < extra else 0)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def _run_chunk(fn: Callable[[T], R], chunk: list[T]) -> tuple[float, list[R]]:
    """Apply ``fn`` to one chunk (module-level so process pools can ship it).

    Returns ``(elapsed_seconds, results)`` so the coordinating thread
    can record per-chunk latency on its own metrics registry — worker
    processes see only the (no-op) default registry.
    """
    started = time.perf_counter()
    results = [fn(item) for item in chunk]
    return time.perf_counter() - started, results


def _record_chunk(backend: str, elapsed: float, n_items: int) -> None:
    """Feed one executed chunk into the active metrics registry."""
    registry = obs_metrics.active()
    registry.counter("executor.chunks", backend=backend).inc()
    registry.counter("executor.items", backend=backend).inc(n_items)
    registry.histogram("executor.chunk_seconds", backend=backend).observe(elapsed)


class SerialExecutor:
    """The reference backend: a plain in-order loop."""

    backend = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, in order (recorded as one chunk)."""
        items = list(items)
        elapsed, results = _run_chunk(fn, items)
        _record_chunk(self.backend, elapsed, len(items))
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class _PoolExecutor:
    """Shared chunk-submit/ordered-gather logic of the pooled backends."""

    backend = "pool"
    _pool_cls: type

    def __init__(self, jobs: int = 0) -> None:
        self.jobs = resolve_jobs(jobs)

    #: Chunks per worker; >1 smooths load imbalance between chunks while
    #: keeping per-chunk submission overhead (pickling, scheduling) low.
    _CHUNKS_PER_JOB = 4

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results come back in input order."""
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            elapsed, results = _run_chunk(fn, items)
            _record_chunk(self.backend, elapsed, len(items))
            return results
        chunks = chunk_evenly(items, self.jobs * self._CHUNKS_PER_JOB)
        with self._pool_cls(max_workers=min(self.jobs, len(chunks))) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk) for chunk in chunks]
            results: list[R] = []
            for chunk, future in zip(chunks, futures):  # gather in submission order
                elapsed, chunk_results = future.result()
                _record_chunk(self.backend, elapsed, len(chunk))
                results.extend(chunk_results)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; mapped functions may be closures."""

    backend = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend; mapped functions and items must pickle."""

    backend = "process"
    _pool_cls = ProcessPoolExecutor


#: Any of the three backends (they share the duck-typed ``map`` API).
Executor = SerialExecutor | ThreadExecutor | ProcessExecutor


def get_executor(backend: str = "serial", jobs: int = 0) -> Executor:
    """Build the named backend; ``jobs=0`` means one worker per core."""
    require(backend in BACKENDS, f"unknown executor backend {backend!r}")
    if backend == "thread":
        executor: Executor = ThreadExecutor(jobs)
    elif backend == "process":
        executor = ProcessExecutor(jobs)
    else:
        executor = SerialExecutor()
    obs_metrics.active().gauge("executor.jobs", backend=backend).set(executor.jobs)
    return executor
