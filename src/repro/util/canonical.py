"""Canonical JSON reduction of arbitrary config/artifact values.

:func:`canonicalize` deterministically reduces dataclasses, enums,
mappings and collections to JSON-serialisable primitives.  It is the
shared substrate of every content address in the repo: the scenario
cache fingerprint (:mod:`repro.experiments.cache`) and the per-run
manifest's artifact digests (:mod:`repro.obs.manifest`) both hash its
output, so its mapping must never depend on iteration order, process
identity or wall-clock state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Mapping


def canonicalize(value: object) -> object:
    """Reduce ``value`` to JSON-serialisable primitives, deterministically.

    Dataclasses become ``{"__type__": name, **fields}`` maps, enums
    become ``{"__enum__": name, "value": ...}``, mappings are key-sorted,
    sets are element-sorted; anything unrecognised falls back to
    ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": canonicalize(value.value)}
    if isinstance(value, Mapping):
        return {
            str(k): canonicalize(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonicalize(v) for v in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(value: object) -> str:
    """The compact, key-sorted JSON encoding of ``canonicalize(value)``."""
    return json.dumps(canonicalize(value), sort_keys=True, separators=(",", ":"))


def canonical_digest(value: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
