"""Small statistics helpers used by the analysis layer.

These are deliberately dependency-light (plain Python + math) because
they run inside tight loops over clusters and events.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, Mapping, Sequence

from repro.util.validation import require


def frequency(items: Iterable[Hashable]) -> dict[Hashable, int]:
    """Count occurrences of each item, in descending-count order."""
    counts = Counter(items)
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))


def entropy(counts: Mapping[Hashable, int] | Sequence[int]) -> float:
    """Shannon entropy (bits) of a discrete distribution given by counts.

    >>> entropy([1, 1]) == 1.0
    True
    >>> entropy([4]) == 0.0
    True
    """
    values = list(counts.values()) if isinstance(counts, Mapping) else list(counts)
    total = sum(values)
    require(total > 0, "entropy requires at least one observation")
    result = 0.0
    for v in values:
        if v > 0:
            p = v / total
            result -= p * math.log2(p)
    return result


def normalized_entropy(counts: Mapping[Hashable, int] | Sequence[int]) -> float:
    """Entropy scaled to [0, 1] by the maximum for the observed support size."""
    values = list(counts.values()) if isinstance(counts, Mapping) else list(counts)
    nonzero = sum(1 for v in values if v > 0)
    if nonzero <= 1:
        return 0.0
    return entropy(values) / math.log2(nonzero)


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (population inequality).

    0 means perfectly even, values near 1 mean concentrated mass.
    """
    data = sorted(values)
    require(len(data) > 0, "gini requires at least one value")
    require(all(v >= 0 for v in data), "gini requires non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    cum = 0.0
    for i, v in enumerate(data, start=1):
        cum += i * v
    return (2.0 * cum) / (n * total) - (n + 1.0) / n


def jaccard(a: frozenset | set, b: frozenset | set) -> float:
    """Jaccard similarity of two sets; 1.0 when both are empty."""
    if not a and not b:
        return 1.0
    inter = len(a & b)
    return inter / (len(a) + len(b) - inter)


def burstiness(interarrival: Sequence[float]) -> float:
    """Goh-Barabasi burstiness of inter-arrival times, in [-1, 1].

    -1 is perfectly periodic, 0 is Poisson-like, values near +1 are
    strongly bursty (long silences punctuated by tight clusters), which
    is the temporal signature the paper associates with bot activity.
    """
    require(len(interarrival) > 0, "burstiness requires at least one gap")
    mean = sum(interarrival) / len(interarrival)
    if mean == 0:
        return 0.0
    var = sum((x - mean) ** 2 for x in interarrival) / len(interarrival)
    sigma = math.sqrt(var)
    if sigma + mean == 0:
        return 0.0
    return (sigma - mean) / (sigma + mean)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of a sample (q in [0, 1])."""
    require(len(values) > 0, "quantile requires at least one value")
    require(0.0 <= q <= 1.0, "q must be in [0, 1]")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = q * (len(data) - 1)
    lower = int(math.floor(pos))
    upper = int(math.ceil(pos))
    if lower == upper:
        return data[lower]
    frac = pos - lower
    return data[lower] * (1 - frac) + data[upper] * frac
