"""Lightweight argument validation helpers.

The simulation layers take many numeric knobs (probabilities, rates,
population sizes).  Validating them eagerly at construction time turns
silent mis-configurations into immediate, well-located errors.
"""

from __future__ import annotations

from typing import Any


class ValidationError(ValueError):
    """Raised when a configuration value fails validation."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Require ``value`` to be an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ValidationError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )


def require_positive(value: float, name: str, *, allow_zero: bool = False) -> None:
    """Require a strictly positive (or non-negative) numeric value."""
    require_type(value, (int, float), name)
    if allow_zero:
        require(value >= 0, f"{name} must be >= 0, got {value!r}")
    else:
        require(value > 0, f"{name} must be > 0, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``value`` to lie in the closed interval [0, 1]."""
    require_type(value, (int, float), name)
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value!r}")
