"""Plain-text rendering of tables and histograms.

The benchmark harness reproduces the paper's tables and figures as text:
tables via :class:`TextTable`, figure-like distributions via
:func:`format_histogram` (an ASCII bar chart).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class TextTable:
    """Minimal, dependency-free table renderer with aligned columns.

    >>> t = TextTable(["name", "count"])
    >>> t.add_row(["alpha", 3])
    >>> print(t.render())
    name  | count
    ------+------
    alpha | 3
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; cells are stringified with ``str``."""
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table as aligned, pipe-separated text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_histogram(
    counts: Mapping[str, int | float],
    *,
    width: int = 50,
    title: str | None = None,
    sort: bool = True,
) -> str:
    """Render a labelled ASCII bar chart, the text stand-in for figures.

    >>> print(format_histogram({"a": 2, "b": 4}, width=4, sort=False))
    a | ##   (2)
    b | #### (4)
    """
    if not counts:
        return (title + "\n" if title else "") + "(empty)"
    peak = max(counts.values())
    label_width = max(len(str(k)) for k in counts)
    items = sorted(counts.items(), key=lambda kv: -kv[1]) if sort else list(counts.items())
    lines = [title] if title else []
    for label, value in items:
        bar_len = 0 if peak == 0 else max(int(round(width * value / peak)), 1 if value > 0 else 0)
        bar = ("#" * bar_len).ljust(width if peak > 0 else 0)
        lines.append(f"{str(label).ljust(label_width)} | {bar} ({value})".rstrip())
    return "\n".join(lines)
