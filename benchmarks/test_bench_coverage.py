"""Deployment-diversity bench: the value of 30 network locations.

Not a numbered figure, but the premise of the whole system: SGNET's
spatial diversity is what makes the invariant constraints meaningful
and location-targeted activity visible at all.
"""

from repro.analysis.coverage import SensorCoverage, deployment_size_ablation
from repro.util.tables import TextTable

from benchmarks.conftest import write_report


def test_bench_sensor_coverage(benchmark, paper_run, results_dir):
    coverage = benchmark(lambda: SensorCoverage(paper_run.dataset, paper_run.epm))

    curve = coverage.accumulation_curve()
    points = deployment_size_ablation(paper_run.dataset, [1, 3, 10, 20, 30])

    table = TextTable(
        ["locations", "events", "samples", "E", "P", "M", "invariants"],
        title="Ablation: deployment size (busiest-first sub-deployments)",
    )
    for point in points:
        table.add_row(
            [
                point.n_networks,
                point.n_events,
                point.n_samples,
                point.e_clusters,
                point.p_clusters,
                point.m_clusters,
                point.total_invariants,
            ]
        )
    marks = [curve[i] for i in (0, len(curve) // 4, len(curve) // 2, len(curve) - 1)]
    text = table.render() + (
        f"\nM-cluster accumulation over locations (1/25%/50%/100%): {marks}"
        f"\nmedian single-location coverage: "
        f"{coverage.median_single_location_coverage():.0%} of all M-clusters"
    )
    write_report(results_dir, "ablation_deployment", text)
    print("\n" + text)

    # The curve keeps rising: every added location contributes clusters.
    assert curve[0] < curve[-1] * 0.7
    assert coverage.median_single_location_coverage() < 0.75
    exclusive = coverage.exclusive_clusters()
    assert sum(len(c) for c in exclusive.values()) > 0
