"""Code-sharing / patching / evolution benches (the abstract's claims).

Not a numbered table in the paper, but the analyses §4.3 and the
abstract build their conclusions on: patch lineages, shared propagation
routines, and the continuously-moving landscape.
"""

from repro.analysis.codeshare import CodeSharingAnalysis
from repro.analysis.crossview import CrossView
from repro.analysis.evolution import EvolutionAnalysis
from repro.util.tables import TextTable

from benchmarks.conftest import write_report


def test_bench_patch_lineages(benchmark, paper_run, results_dir):
    crossview = CrossView(paper_run.dataset, paper_run.epm, paper_run.bclusters)
    sharing = CodeSharingAnalysis(
        paper_run.dataset, paper_run.epm, crossview, paper_run.grid
    )
    lineages = benchmark(sharing.patch_lineages)

    top = lineages[0]
    lines = [
        "Patching and code sharing (abstract / §4.3)",
        "",
        sharing.render_lineage(top, max_steps=10),
        "",
        "shared propagation routines (P-cluster -> behavioural lineages):",
    ]
    for p_cluster, behaviours in sharing.shared_propagation()[:5]:
        lines.append(f"  P{p_cluster} -> B{behaviours}")
    text = "\n".join(lines)
    write_report(results_dir, "codeshare", text)
    print("\n" + text)

    # The worm lineage shows tens of patch steps dominated by size
    # changes with occasional recompilations; at least one propagation
    # routine is shared across distinct behaviours.
    assert top.n_patches > 20
    assert len(top.recompilations()) >= 1
    assert sharing.shared_propagation()


def test_bench_weekly_evolution(benchmark, paper_run, results_dir):
    evolution = EvolutionAnalysis(paper_run.dataset, paper_run.epm, paper_run.grid)
    weekly = benchmark(evolution.weekly_activity)

    curve = evolution.sample_discovery_curve()
    table = TextTable(
        ["quarter of window", "cumulative samples", "new M-clusters"],
        title="Landscape evolution over the observation window",
    )
    n = len(weekly)
    for quarter in range(1, 5):
        end = quarter * n // 4
        table.add_row(
            [
                f"Q{quarter}",
                curve[end - 1],
                sum(w.new_m_clusters for w in weekly[: end]),
            ]
        )
    text = table.render()
    write_report(results_dir, "evolution", text)
    print("\n" + text)

    # Discovery never saturates inside the window.
    q1, q2, q3, q4 = (curve[i * n // 4 - 1] for i in range(1, 5))
    assert q1 < q2 < q3 < q4
    late_births = sum(w.new_m_clusters for w in weekly[n // 2 :])
    assert late_births > 5
