"""Table 1: selected features and number of invariant values per feature.

The benchmark measures invariant discovery alone (EPM phase 2) on the mu
dimension — the heaviest of the three — and the report prints the full
paper-vs-measured table across all dimensions.
"""

from repro.core.features import mu_features
from repro.core.invariants import discover_invariants
from repro.experiments.drivers import table1

from benchmarks.conftest import write_report


def test_bench_invariant_discovery_mu(benchmark, paper_run, results_dir):
    feature_set = mu_features()
    observations = [
        (feature_set.extract(e), int(e.source), int(e.sensor))
        for e in paper_run.dataset
        if feature_set.applies_to(e)
    ]
    stats = benchmark(
        lambda: discover_invariants(observations, feature_set.names)
    )

    flat, text = table1(paper_run)
    write_report(results_dir, "table1", text)
    print("\n" + text)

    # Shape: epsilon paths dominate epsilon ports; size/md5 invariants
    # are numerous (one per established variant); machine type is almost
    # unique; PE-header features have low cardinality.
    assert flat["fsm_path_id"] > flat["dst_port"]
    assert flat["size"] > 50
    assert flat["md5"] > 20
    assert flat["machine_type"] <= 3
    assert 1 <= flat["linker_version"] <= 12
    assert stats.count_per_feature()["size"] == flat["size"]
