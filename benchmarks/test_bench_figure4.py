"""Figure 4: characterising the size-1 anomaly samples.

Top panel: AV names a popular vendor gives those samples (Rahack/Allaple
variants dominate).  Bottom panel: their (E, P) propagation coordinates
(nearly all delivered by the TCP/9988 PUSH P-pattern).  The benchmark
measures the two distribution computations.
"""

from repro.analysis.avnames import av_name_distribution, ep_coordinate_distribution
from repro.analysis.crossview import CrossView
from repro.experiments.drivers import figure4

from benchmarks.conftest import write_report


def test_bench_figure4_distributions(benchmark, paper_run, results_dir):
    crossview = CrossView(paper_run.dataset, paper_run.epm, paper_run.bclusters)
    md5s = [a.md5 for a in crossview.singleton_anomalies()]

    def distributions():
        av = av_name_distribution(paper_run.dataset, md5s)
        ep = ep_coordinate_distribution(paper_run.dataset, paper_run.epm, md5s)
        return av, ep

    av, ep = benchmark(distributions)

    result, text = figure4(paper_run)
    write_report(results_dir, "figure4", text)
    print("\n" + text)

    rahack = sum(n for label, n in av.items() if "Rahack" in str(label))
    assert rahack / sum(av.values()) > 0.6  # top panel: Rahack variants
    top_ep = ep.most_common(1)[0][1]
    assert top_ep / sum(ep.values()) > 0.9  # bottom panel: one EP pair
    assert result["share"] > 0.9
