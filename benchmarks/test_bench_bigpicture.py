"""Headline reproduction (§4, §4.1): EPM clustering over the full dataset.

Regenerates: total samples collected/executed, and the 39/27/260/972
E/P/M/B cluster counts.  The benchmark measures a complete EPM fit
(invariant discovery + pattern discovery + classification over all three
dimensions) on the paper-scale dataset.
"""

from repro.core.epm import EPMClustering
from repro.experiments.drivers import headline

from benchmarks.conftest import write_report


def test_bench_epm_full_fit(benchmark, paper_run, results_dir):
    epm = benchmark(lambda: EPMClustering().fit(paper_run.dataset))
    assert epm.counts() == paper_run.epm.counts()

    measured, text = headline(paper_run)
    write_report(results_dir, "headline", text)
    print("\n" + text)

    # Shape assertions vs the paper (factors, not absolute equality).
    assert 4000 < measured["samples_collected"] < 9000
    assert 3500 < measured["samples_executed"] < measured["samples_collected"]
    assert 20 <= measured["e_clusters"] <= 60
    assert 12 <= measured["p_clusters"] <= 45
    assert 150 <= measured["m_clusters"] <= 400
    assert 600 <= measured["b_clusters"] <= 1400
    assert measured["size1_b_clusters"] / measured["b_clusters"] > 0.75


def test_bench_behaviour_clustering(benchmark, paper_run):
    """The scalable B-clustering run the 972-cluster figure comes from."""
    result = benchmark(paper_run.anubis.cluster)
    assert result.n_clusters == paper_run.bclusters.n_clusters


def test_default_seed_regression(benchmark, paper_run):
    """The published numbers of EXPERIMENTS.md must stay put exactly."""
    from repro.experiments.regression import check_headline

    deviations = benchmark(lambda: check_headline(paper_run.headline()))
    assert deviations == [], "; ".join(deviations)
