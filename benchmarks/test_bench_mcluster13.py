"""§4.2's M-cluster 13 case study.

Regenerates: the fully-pinned header pattern with MD5='*' (the exact
field values the paper quotes), the per-attacker polymorphism evidence
(one MD5 per source, recurring across honeypots), and the split of one
M-cluster over several B-clusters driven by the death of the
``iliketay.cn`` infrastructure.  The benchmark measures locating the
cluster and assembling the evidence.
"""

from repro.experiments.drivers import mcluster13_report

from benchmarks.conftest import write_report


def test_bench_mcluster13(benchmark, paper_run, results_dir):
    result, text = benchmark(lambda: mcluster13_report(paper_run))
    write_report(results_dir, "mcluster13", text)
    print("\n" + text)

    assert result["m_cluster"] is not None
    info = paper_run.epm.mu.clusters[result["m_cluster"]]
    pattern = dict(zip(paper_run.epm.mu.feature_names, info.pattern))
    # The paper's quoted invariants, field for field.
    assert pattern["size"] == 59_904
    assert pattern["machine_type"] == 332
    assert pattern["n_sections"] == 3
    assert pattern["n_dlls"] == 1
    assert pattern["os_version"] == 64
    assert pattern["linker_version"] == 92
    assert pattern["kernel32_symbols"] == ("GetProcAddress", "LoadLibraryA")
    # Per-source polymorphism: every MD5 tied to one attacker, most seen
    # by several honeypots; the cluster splits over >= 3 B-clusters.
    assert result["single_source_md5s"] == result["n_samples"]
    assert result["multi_sensor_md5s"] > result["n_samples"] * 0.5
    assert len(result["b_clusters"]) >= 3
