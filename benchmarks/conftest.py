"""Benchmark fixtures: one full-scale paper scenario per session.

Every bench measures one stage of the reproduction against the
full-scale dataset (the same configuration as the paper: 74 weeks, 150
monitored addresses) and writes its rendered paper-vs-measured report to
``results/<name>.txt`` so the regenerated tables/figures survive the
benchmark run as reviewable artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioRun

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def paper_run() -> ScenarioRun:
    """The full-scale scenario all benches share (built once, ~15 s)."""
    return PaperScenario(seed=2010).run()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's rendered report."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
