"""Benchmark fixtures: one full-scale paper scenario per session.

Every bench measures one stage of the reproduction against the
full-scale dataset (the same configuration as the paper: 74 weeks, 150
monitored addresses) and writes its rendered paper-vs-measured report to
``results/<name>.txt`` so the regenerated tables/figures survive the
benchmark run as reviewable artifacts.

The session scenario goes through the artifact cache
(:mod:`repro.experiments.cache`): the first session pays the full
rebuild, later sessions load the pickled run in milliseconds.  Control
knobs (environment variables):

* ``REPRO_BENCH_CACHE=0``    — force a rebuild (and refresh the cache);
* ``REPRO_BENCH_EXECUTOR``   — backend for the rebuild (default serial);
* ``REPRO_BENCH_JOBS``      — worker count (default 0 = all cores);
* ``REPRO_CACHE_DIR``        — cache location (default ``~/.cache/repro``).

Each session also emits ``results/BENCH_pipeline.json`` — the
machine-readable performance record (per-stage wall times, headline
counts, backend, cache status) that seeds the perf trajectory.

Benches that need the full-scale scenario are auto-marked ``slow``;
deselect them with ``-m "not slow"`` to run only the cheap smoke set.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.cache import ScenarioCache
from repro.experiments.perf_gate import expected_matrix
from repro.experiments.scenario import PaperScenario, ScenarioConfig, ScenarioRun
from repro.experiments.stages import STAGE_NAMES
from repro.util.clock import timestamp

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

PAPER_SEED = 2010


def pytest_collection_modifyitems(items) -> None:
    """Mark every bench that builds the full-scale scenario as slow."""
    for item in items:
        if "paper_run" in getattr(item, "fixturenames", ()):
            item.add_marker(pytest.mark.slow)


def _write_bench_json(run: ScenarioRun, wall_seconds: float, cache_hit: bool) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    counts = run.headline()
    build_seconds = run.timings.total
    record = {
        # 3: added the stage_cache section — the session run's per-stage
        #    dispositions plus the expected hit/miss matrix of the CI
        #    perf gate (repro.experiments.perf_gate), derived from the
        #    stage DAG at record time.  A DAG change without a
        #    regenerated record fails the gate.
        "schema": 3,
        # Injectable clock (repro.util.clock): pin with REPRO_FIXED_TIME
        # for byte-stable records under tests/CI.
        "generated_at": timestamp(),
        "seed": run.seed,
        "backend": run.config.executor,
        "jobs": run.config.jobs,
        "cache_hit": cache_hit,
        "session_wall_seconds": round(wall_seconds, 4),
        "stage_seconds": {
            name: round(seconds, 4)
            for name, seconds in run.timings.as_dict().items()
        },
        "build_total_seconds": round(build_seconds, 4),
        "counts": counts,
        # Throughput of the build that produced the artifacts (the
        # cached build's own timings on a warm session), so the perf
        # trajectory records samples/sec, not just wall-clock.
        "throughput": {
            "events_per_second": round(counts["events"] / build_seconds, 2)
            if build_seconds
            else None,
            "samples_executed_per_second": round(
                counts["samples_executed"] / build_seconds, 2
            )
            if build_seconds
            else None,
        },
        # Per-layer counter/gauge/histogram snapshot of the build.
        "metrics": run.metrics.as_dict() if run.metrics is not None else {},
        "stage_cache": {
            "statuses": run.stage_cache
            or {name: "off" for name in STAGE_NAMES},
            "gate_matrix": expected_matrix(),
        },
    }
    path = RESULTS_DIR / "BENCH_pipeline.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def paper_run() -> ScenarioRun:
    """The full-scale scenario all benches share (cached across sessions)."""
    config = ScenarioConfig(
        executor=os.environ.get("REPRO_BENCH_EXECUTOR", "serial"),
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "0")),
    )
    use_cache = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"
    cache = ScenarioCache()
    started = time.perf_counter()
    run = cache.load(PAPER_SEED, config) if use_cache else None
    cache_hit = run is not None
    if run is None:
        run = PaperScenario(seed=PAPER_SEED, config=config).run()
        cache.store(run)
    _write_bench_json(run, time.perf_counter() - started, cache_hit)
    return run


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Persist one experiment's rendered report."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
