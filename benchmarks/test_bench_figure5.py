"""Figure 5: propagation context of two B-clusters split over M-clusters.

Left of the paper's figure: an Allaple-style worm B-cluster — large
populations spread across the IP space, tens of active weeks, steady
arrivals.  Right: a bot B-cluster — small populations in specific
networks, few active weeks, bursty.  The benchmark measures the
per-M-cluster context computation for the worm B-cluster.
"""

from repro.analysis.context import PropagationContext
from repro.experiments.drivers import figure5

from benchmarks.conftest import write_report


def test_bench_figure5_context(benchmark, paper_run, results_dir):
    context = PropagationContext(paper_run.dataset, paper_run.grid)
    contexts = benchmark(
        lambda: context.figure5(paper_run.epm, paper_run.bclusters, 0)
    )
    assert len(contexts) > 5  # one B-cluster spans many M-clusters

    results, text = figure5(paper_run)
    write_report(results_dir, "figure5", text)
    print("\n" + text)

    (worm_b, worm_slices), (bot_b, bot_slices) = results[0], results[1]
    # Worm side: widespread + long-lived.
    for ctx in worm_slices[:8]:
        assert len(ctx.slash8_histogram) > 10
        assert ctx.weeks_active > 8
    # Bot side: concentrated + bursty.
    bot_major = [c for c in bot_slices if c.n_events >= 15]
    assert bot_major
    for ctx in bot_major:
        assert len(ctx.slash8_histogram) <= 6
        assert ctx.burstiness > 0.25
