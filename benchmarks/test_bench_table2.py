"""Table 2: IRC C&C servers associated with M-clusters.

Regenerates: the (server, room) -> M-clusters table plus the
infrastructure-reuse fingerprint the paper reads from it (servers
sharing /24s, room names recurring across servers, single rooms
commanding multiple code variants).  The benchmark measures the
correlation pass over every analysed sample's behavioural profile.
"""

from repro.analysis.irc import CnCCorrelation
from repro.experiments.drivers import table2

from benchmarks.conftest import write_report


def test_bench_cnc_correlation(benchmark, paper_run, results_dir):
    correlation = benchmark(
        lambda: CnCCorrelation(paper_run.dataset, paper_run.epm, paper_run.anubis)
    )

    _correlation, text = table2(paper_run)
    write_report(results_dir, "table2", text)
    print("\n" + text)

    summary = correlation.infrastructure_summary()
    # Paper shape: tens of M-clusters resolve to IRC rendezvous; most
    # rendezvous command one or two M-clusters; the infrastructure shows
    # heavy reuse (shared /24s, recurring room names, patched botnets).
    assert summary["m_clusters"] > 40
    assert summary["subnets_with_multiple_servers"] >= 2
    assert summary["rooms_recurring_across_servers"] >= 3
    assert summary["rooms_commanding_multiple_m_clusters"] >= 3
    rows = correlation.table2()
    multi = sum(1 for _s, _r, ms in rows if len(ms) > 1)
    assert multi < len(rows)  # most rendezvous command a single M-cluster
