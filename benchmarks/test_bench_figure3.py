"""Figure 3: the four-layer E/P/M/B relation graph (clusters >= 30 events).

The benchmark measures graph construction; the report prints the layer
sizes, the heaviest edges, and the paper's three key readings (few E/P
combinations, payloads shared across exploits, B grouping several M).
"""

from repro.analysis.relations import RelationGraph
from repro.experiments.drivers import figure3

from benchmarks.conftest import write_report


def test_bench_relation_graph(benchmark, paper_run, results_dir):
    graph = benchmark(
        lambda: RelationGraph(
            paper_run.dataset, paper_run.epm, paper_run.bclusters, min_events=30
        )
    )
    _graph, text = figure3(paper_run)
    write_report(results_dir, "figure3", text)
    print("\n" + text)

    stats = graph.stats()
    # Paper shape: E and P layers much thinner than the M layer; the
    # B layer thinner than M among well-populated clusters.
    assert stats.e_nodes < stats.m_nodes / 3
    assert stats.p_nodes < stats.m_nodes / 3
    assert stats.b_nodes < stats.m_nodes
    assert graph.shared_payloads(), "payloads must be shared across exploits"
    assert graph.b_cluster_splits(), "B-clusters must group several M-clusters"
