"""Micro-benchmarks of the substrate stages feeding every experiment.

Not a paper table — these quantify the reproduction's own moving parts:
PE emission/parsing (per collected binary), sandbox execution (per
analysed sample), the end-to-end event pipeline rate, and a
reduced-scale end-to-end smoke run (the CI benchmark).
"""

from repro.experiments.catalog import allaple_behavior
from repro.experiments.scenario import small_scenario
from repro.peformat.builder import build_pe
from repro.peformat.parser import parse_pe
from repro.peformat.structures import PESpec
from repro.sandbox.environment import Environment
from repro.sandbox.execution import Sandbox


def test_bench_pe_build(benchmark):
    spec = PESpec()
    seeds = iter(range(10**9))
    image = benchmark(lambda: build_pe(spec, next(seeds)))
    assert len(image) == spec.file_size


def test_bench_pe_parse(benchmark):
    image = build_pe(PESpec(), 1)
    info = benchmark(lambda: parse_pe(image))
    assert info.n_sections == 3


def test_bench_sandbox_execution(benchmark):
    sandbox = Sandbox(Environment())
    # Noise-free: the benchmarked path is the deterministic interpreter,
    # not the derailment branch (whose output can be a 4-feature crash).
    behavior = allaple_behavior(0).with_noise_rate(0.0)
    seeds = iter(range(10**9))
    profile = benchmark(
        lambda: sandbox.execute(behavior, time=0, run_seed=next(seeds))
    )
    assert len(profile) > 5


def test_bench_smoke_pipeline(benchmark):
    """Reduced-scale end-to-end run: the fast pipeline benchmark CI runs.

    One round is enough — the interesting output is the absolute wall
    time and the per-stage split recorded on the run itself.
    """
    run = benchmark.pedantic(
        lambda: small_scenario(scale=0.1, n_weeks=12), rounds=1, iterations=1
    )
    counts = run.headline()
    assert counts["events"] > 0
    assert counts["b_clusters"] > 0
    assert run.timings.total > 0
    assert {stage.name for stage in run.timings.stages} >= {
        "observe",
        "enrich",
        "epm",
        "bcluster",
    }


def test_bench_event_pipeline_rate(benchmark, paper_run):
    """Events/second through EPM classification of one dimension."""
    from repro.core.features import mu_features

    feature_set = mu_features()
    events = [e for e in paper_run.dataset if feature_set.applies_to(e)]
    clustering = paper_run.epm.mu

    def classify_all():
        return sum(
            1
            for e in events
            if clustering.pattern_set.classify(
                feature_set.extract(e), clustering.invariants
            )
        )

    count = benchmark(classify_all)
    assert count == len(events)
