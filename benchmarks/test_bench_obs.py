"""Observability-cost benchmarks: span profiling must stay near-free.

Profiling (`ScenarioConfig.profile`) attaches CPU/RSS/GC probes around
every span.  The acceptance bar is that enabling it costs < 2% wall
time on the pipeline; this bench measures the ratio on the reduced
smoke scenario and records it in ``results/BENCH_obs_profile.json`` so
the overhead has a longitudinal record of its own.  The assertion bound
is deliberately looser than the 2% target — a shared CI box can eat a
scheduler hiccup — while the recorded number tracks the true cost.
"""

from __future__ import annotations

import json
import time

from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.honeypot.deployment import DeploymentConfig
from repro.obs.profile import PROFILE_ATTRS, chrome_trace
from repro.util.clock import timestamp

SMOKE = dict(
    n_weeks=12,
    scale=0.1,
    deployment=DeploymentConfig(n_networks=8, sensors_per_network=3),
)


def _timed_run(profile: bool) -> tuple[float, object]:
    config = ScenarioConfig(profile=profile, **SMOKE)
    started = time.perf_counter()
    run = PaperScenario(seed=2010, config=config).run()
    return time.perf_counter() - started, run


def test_bench_profiling_overhead(results_dir):
    # Warm-up build so imports/allocator state don't bill the first arm.
    _timed_run(False)
    plain_seconds, plain = _timed_run(False)
    profiled_seconds, profiled = _timed_run(True)

    # The probes really ran: every stage span carries the profile attrs.
    for depth, span in profiled.trace.walk():
        if depth == 1:
            assert set(PROFILE_ATTRS) <= set(span.attributes), span.name
            assert span.attributes["cpu_seconds"] >= 0
    # ... and they cannot change any artifact.
    assert profiled.headline() == plain.headline()

    overhead = profiled_seconds / plain_seconds - 1.0
    record = {
        "schema": 1,
        "generated_at": timestamp(),
        "plain_seconds": round(plain_seconds, 4),
        "profiled_seconds": round(profiled_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "chrome_trace_events": len(
            chrome_trace(profiled.trace.export())["traceEvents"]
        ),
    }
    (results_dir / "BENCH_obs_profile.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Target < 2%; assert with headroom for noisy shared runners.
    assert overhead < 0.25, f"profiling overhead {overhead:.1%} is not near-free"


def _timed_window_run(windows: int, repeats: int = 3) -> tuple[float, object]:
    """Best-of-``repeats`` wall time: the smoke run is short enough that
    a single scheduler hiccup would swamp the ~1ms fold being measured."""
    best = float("inf")
    run = None
    for _ in range(repeats):
        config = ScenarioConfig(windows=windows, **SMOKE)
        started = time.perf_counter()
        run = PaperScenario(seed=2010, config=config).run()
        best = min(best, time.perf_counter() - started)
    return best, run


def test_bench_window_overhead(results_dir):
    """Windowed landscape telemetry must stay near-free (< 2% target).

    ``ScenarioConfig.windows`` folds the run's artifacts into per-window
    series and evaluates the health rules; this times the smoke scenario
    with the default four-week windows against ``windows=0`` and records
    the ratio in ``results/BENCH_obs_windows.json``.
    """
    _timed_window_run(0, repeats=1)  # warm-up
    plain_seconds, plain = _timed_window_run(0)
    windowed_seconds, windowed = _timed_window_run(4)

    # The fold really ran: every documented series is populated...
    from repro.obs.windows import WINDOW_SERIES

    report = windowed.windows
    assert report is not None and set(report.series) == set(WINDOW_SERIES)
    assert report.n_windows == -(-SMOKE["n_weeks"] // 4)
    # ... and it cannot change any artifact.
    assert windowed.headline() == plain.headline()
    assert (
        windowed.manifest.artifact_digests == plain.manifest.artifact_digests
    )
    # Execution-only knob: both arms share one semantic fingerprint.
    assert windowed.manifest.fingerprint == plain.manifest.fingerprint

    overhead = windowed_seconds / plain_seconds - 1.0
    record = {
        "schema": 1,
        "generated_at": timestamp(),
        "plain_seconds": round(plain_seconds, 4),
        "windowed_seconds": round(windowed_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "n_windows": report.n_windows,
        "window_weeks": report.window_weeks,
        "health_findings": len(windowed.health.findings),
    }
    (results_dir / "BENCH_obs_windows.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Target < 2%; assert with headroom for noisy shared runners.
    assert overhead < 0.25, f"window telemetry {overhead:.1%} is not near-free"


def _timed_event_run(tmp_dir, seed: int, events: bool) -> tuple[float, object]:
    config = ScenarioConfig(
        events=str(tmp_dir / f"events-{seed}-{int(events)}.jsonl") if events else None,
        **SMOKE,
    )
    started = time.perf_counter()
    run = PaperScenario(seed=seed, config=config).run()
    return time.perf_counter() - started, run


def test_bench_event_stream_overhead(results_dir, tmp_path):
    """The live event stream must stay near-free (< 2% target).

    The expensive part is the per-event flushed write of the file sink;
    this times the smoke scenario with and without ``events=`` and
    records the ratio in ``results/BENCH_obs_events.json``.
    """
    from repro.obs.events import read_events

    _timed_event_run(tmp_path, 2010, False)  # warm-up
    plain_seconds, plain = _timed_event_run(tmp_path, 2010, False)
    events_seconds, streamed = _timed_event_run(tmp_path, 2010, True)

    # The stream really recorded: the log replays and matches the
    # manifest's own per-kind accounting.
    log = read_events(tmp_path / "events-2010-1.jsonl")
    assert log and log[0].kind == "run.start" and log[-1].kind == "run.finish"
    assert streamed.manifest.event_summary == {
        kind: sum(1 for event in log if event.kind == kind)
        for kind in {event.kind for event in log}
    }
    # ... and it cannot change any artifact.
    assert streamed.headline() == plain.headline()
    assert streamed.manifest.artifact_digests == plain.manifest.artifact_digests

    overhead = events_seconds / plain_seconds - 1.0
    record = {
        "schema": 1,
        "generated_at": timestamp(),
        "plain_seconds": round(plain_seconds, 4),
        "events_seconds": round(events_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "n_events": len(log),
        "event_summary": dict(streamed.manifest.event_summary),
    }
    (results_dir / "BENCH_obs_events.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Target < 2%; assert with headroom for noisy shared runners.
    assert overhead < 0.25, f"event-stream overhead {overhead:.1%} is not near-free"


def _stored_history(root, run, n_runs: int) -> "object":
    """A run store holding ``n_runs`` replays of one smoke manifest."""
    from repro.obs.history import RunStore
    from repro.obs.manifest import RunManifest

    store = RunStore(root)
    payload = run.manifest.as_dict()
    for position in range(n_runs):
        clone = json.loads(json.dumps(payload))
        clone["created_at"] = f"2026-08-01T00:{position:02d}:00Z"
        store.add(RunManifest.from_dict(clone))
    return store


def test_bench_query_frame_overhead(results_dir, tmp_path):
    """Warm longitudinal queries must stay near-free (< 2% target).

    The query index makes ``repro obs query`` O(new runs): the first
    query pays one full store materialization, every later one reads a
    single JSON file.  This benches both arms over a 24-run store of
    smoke manifests and records the warm-query cost as a fraction of
    the smoke scenario itself in ``results/BENCH_obs_query.json``.
    """
    from repro.obs.query import build_frame, run_query

    def scenario_run():
        # A less-reduced smoke than SMOKE: the fixed per-query cost is
        # compared against a build big enough for the ratio to be fair.
        config = ScenarioConfig(n_weeks=16, scale=0.3)
        started = time.perf_counter()
        run = PaperScenario(seed=2010, config=config).run()
        return time.perf_counter() - started, run

    scenario_run()  # warm-up build
    scenario_seconds, run = scenario_run()
    store = _stored_history(tmp_path / "runs", run, n_runs=24)

    targets = ["metric:lsh.clusters", "span:scenario", "golden:deviations"]
    started = time.perf_counter()
    cold_frame = build_frame(store)
    cold_seconds = time.perf_counter() - started

    warm_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        frame = build_frame(store)
        result = run_query(frame, targets, agg="p50")
        warm_seconds = min(warm_seconds, time.perf_counter() - started)

    # The index really served the warm arm, and it cannot change the
    # answer: indexed and direct constructions agree byte-for-byte.
    assert len(frame) == 24 and len(result.rows) == 24
    assert frame.digest() == cold_frame.digest()
    assert frame.digest() == build_frame(store, use_index=False).digest()

    overhead = warm_seconds / scenario_seconds
    record = {
        "schema": 1,
        "generated_at": timestamp(),
        "runs_indexed": len(frame),
        "scenario_seconds": round(scenario_seconds, 4),
        "cold_build_seconds": round(cold_seconds, 4),
        "warm_query_seconds": round(warm_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "targets": targets,
        "frame_digest": frame.digest(),
    }
    (results_dir / "BENCH_obs_query.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Target < 2% of a scenario build; assert with headroom for noisy
    # shared runners.
    assert overhead < 0.25, f"warm query overhead {overhead:.1%} is not near-free"


def _timed_ring_run(ring: int, repeats: int = 3) -> tuple[float, object]:
    """Best-of-``repeats`` wall time for the smoke scenario with a ring
    transport of the given capacity attached (0 = no ring)."""
    best = float("inf")
    run = None
    for _ in range(repeats):
        config = ScenarioConfig(ring=ring, **SMOKE)
        started = time.perf_counter()
        run = PaperScenario(seed=2010, config=config).run()
        best = min(best, time.perf_counter() - started)
    return best, run


def test_bench_sketch_and_ring_overhead(results_dir):
    """Streaming sketches and the ring transport must stay near-free
    (< 2% target).

    The bounded-telemetry PR adds two always-on costs: every chunk and
    LSH bucket is folded into a DDSketch, and a ring transport (when
    attached) pays a deque append plus drop accounting per event.  This
    times the smoke scenario with a deliberately tiny ring (capacity 16,
    so eviction accounting is exercised on most events) against no
    ring at all, micro-times the raw sketch observe path, and records
    both in ``results/BENCH_obs_sketch.json``.
    """
    from repro.obs.sketch import QuantileSketch

    _timed_ring_run(0, repeats=1)  # warm-up
    plain_seconds, plain = _timed_ring_run(0)
    ring_seconds, ringed = _timed_ring_run(16)

    # The sketches really ran on both arms and reduced identically:
    # bucket sizes are artifact-derived, so the payloads are
    # byte-identical (the mergeable-sketch digest guarantee).
    assert (
        ringed.metrics.sketches["lsh.bucket_size_sketch"]
        == plain.metrics.sketches["lsh.bucket_size_sketch"]
    )
    assert ringed.metrics.sketches["executor.chunk_seconds_sketch"]["count"] > 0
    # The ring really evicted, and every eviction is accounted: the
    # manifest's per-kind map mirrors the events.dropped counters
    # (validate_manifest cross-checks the same invariant).
    ring_drops = ringed.manifest.event_drops.get("ring", {})
    assert sum(ring_drops.values()) > 0
    from repro.obs.validate import validate_manifest

    assert validate_manifest(ringed.manifest.as_dict()) == []
    # ... and none of it can change any artifact.
    assert ringed.headline() == plain.headline()
    assert ringed.manifest.artifact_digests == plain.manifest.artifact_digests

    # Raw observe cost, amortised over 100k values: the per-event bill
    # every instrumented hot loop pays.
    sketch = QuantileSketch()
    values = [0.1 + (index % 997) * 0.013 for index in range(100_000)]
    started = time.perf_counter()
    for value in values:
        sketch.observe(value)
    observe_seconds = time.perf_counter() - started
    assert sketch.count == len(values)

    overhead = ring_seconds / plain_seconds - 1.0
    record = {
        "schema": 1,
        "generated_at": timestamp(),
        "plain_seconds": round(plain_seconds, 4),
        "ring_seconds": round(ring_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "ring_capacity": 16,
        "ring_drops": sum(ring_drops.values()),
        "sketch_observe_seconds_per_100k": round(observe_seconds, 4),
        "sketch_bins": len(sketch.bins),
    }
    (results_dir / "BENCH_obs_sketch.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Target < 2%; assert with headroom for noisy shared runners.
    assert overhead < 0.25, f"sketch/ring overhead {overhead:.1%} is not near-free"
