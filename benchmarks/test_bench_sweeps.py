"""Sensitivity sweeps: the series behind the design choices.

* singleton mass vs analysis-environment flakiness (§4.2's anomaly
  population is manufactured by derailed runs);
* LSH banding vs candidate recall (why bands=20 x rows=5);
* B-structure vs the Jaccard threshold (the t=0.7 choice).
"""

from repro.experiments.sweeps import lsh_shape_sweep, noise_sweep, threshold_sweep
from repro.util.tables import TextTable

from benchmarks.conftest import write_report


def test_bench_noise_sweep(benchmark, paper_run, results_dir):
    multipliers = [0.0, 0.5, 1.0, 1.5]
    points = benchmark.pedantic(
        lambda: noise_sweep(
            paper_run.dataset,
            paper_run.catalog.environment,
            multipliers,
            clustering=paper_run.config.clustering,
        ),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["noise multiplier", "B-clusters", "singletons", "singleton share"],
        title="Sweep: size-1 anomaly mass vs analysis flakiness",
    )
    for point in points:
        table.add_row(
            [
                point.multiplier,
                point.n_clusters,
                point.n_singletons,
                f"{point.singleton_share:.1%}",
            ]
        )
    text = table.render()
    write_report(results_dir, "sweep_noise", text)
    print("\n" + text)

    shares = [p.singleton_share for p in points]
    assert shares == sorted(shares)
    assert shares[0] < 0.05 and shares[-1] > 0.2


def test_bench_lsh_shape_sweep(benchmark, paper_run, results_dir):
    profiles = dict(list(paper_run.anubis.profiles().items())[:600])
    shapes = [(10, 8), (14, 6), (20, 5), (25, 4)]
    points = benchmark.pedantic(
        lambda: lsh_shape_sweep(profiles, shapes, threshold=0.7),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["bands x rows", "recall@0.7", "candidate pairs"],
        title="Sweep: LSH banding vs true-pair recall",
    )
    for point in points:
        table.add_row(
            [f"{point.bands}x{point.rows}", f"{point.recall:.2f}", point.candidate_pairs]
        )
    text = table.render()
    write_report(results_dir, "sweep_lsh", text)
    print("\n" + text)

    by_shape = {(p.bands, p.rows): p for p in points}
    assert by_shape[(20, 5)].recall > 0.9
    assert by_shape[(20, 5)].recall >= by_shape[(10, 8)].recall


def test_bench_threshold_sweep(benchmark, paper_run, results_dir):
    profiles = dict(list(paper_run.anubis.profiles().items())[:800])
    thresholds = [0.5, 0.6, 0.7, 0.8, 0.9]
    points = benchmark.pedantic(
        lambda: threshold_sweep(profiles, thresholds), rounds=1, iterations=1
    )
    table = TextTable(
        ["threshold", "B-clusters", "singletons", "largest"],
        title="Sweep: B-structure vs Jaccard threshold",
    )
    for point in points:
        table.add_row(
            [point.threshold, point.n_clusters, point.n_singletons, point.largest]
        )
    text = table.render()
    write_report(results_dir, "sweep_threshold", text)
    print("\n" + text)

    counts = [p.n_clusters for p in points]
    assert counts == sorted(counts)
