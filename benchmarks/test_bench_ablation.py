"""Ablations over the design choices DESIGN.md calls out.

* invariant-policy sweep — how the 10/3/3 thresholds shape the cluster
  structure (the source/sensor diversity constraints are what keep the
  per-source MD5s of the M-cluster-13 case out of the invariant set);
* LSH vs exact clustering — the scalability claim of the B-clustering
  substrate (same partition, far fewer comparisons);
* ScriptGen learning — the honeyfarm-load argument (proxy ratio decays
  as the FSM grows).
"""

from repro.core.epm import EPMClustering
from repro.core.invariants import InvariantPolicy
from repro.sandbox.clustering import cluster_exact, cluster_lsh
from repro.util.tables import TextTable

from benchmarks.conftest import write_report


def test_bench_invariant_policy_sweep(benchmark, paper_run, results_dir):
    policies = {
        "1/1/1": InvariantPolicy(1, 1, 1),
        "5/2/2": InvariantPolicy(5, 2, 2),
        "10/3/3 (paper)": InvariantPolicy(10, 3, 3),
        "30/5/5": InvariantPolicy(30, 5, 5),
        "100/10/10": InvariantPolicy(100, 10, 10),
    }

    def sweep():
        rows = {}
        for name, policy in policies.items():
            epm = EPMClustering(policy=policy).fit(paper_run.dataset)
            rows[name] = epm.counts()
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(
        ["policy (inst/src/dst)", "E", "P", "M"],
        title="Ablation: invariant-policy sweep",
    )
    for name, counts in rows.items():
        table.add_row(
            [name, counts["e_clusters"], counts["p_clusters"], counts["m_clusters"]]
        )
    text = table.render()
    write_report(results_dir, "ablation_invariants", text)
    print("\n" + text)

    # Laxer thresholds mint spurious invariants (per-source MD5s leak in
    # and shatter the clustering); stricter ones wash structure out.
    assert rows["1/1/1"]["m_clusters"] > rows["10/3/3 (paper)"]["m_clusters"]
    assert rows["100/10/10"]["m_clusters"] < rows["10/3/3 (paper)"]["m_clusters"]


def test_bench_lsh_vs_exact(benchmark, paper_run, results_dir):
    profiles = paper_run.anubis.profiles()

    lsh_result = benchmark(lambda: cluster_lsh(profiles, paper_run.config.clustering))
    exact_result = cluster_exact(profiles, paper_run.config.clustering)

    table = TextTable(
        ["method", "clusters", "exact comparisons"],
        title="Ablation: LSH candidates vs full O(n^2) comparison",
    )
    table.add_row(["exact", exact_result.n_clusters, exact_result.n_exact_comparisons])
    table.add_row(["lsh", lsh_result.n_clusters, lsh_result.n_exact_comparisons])
    text = table.render()
    write_report(results_dir, "ablation_lsh", text)
    print("\n" + text)

    assert lsh_result.sizes() == exact_result.sizes()
    assert lsh_result.n_exact_comparisons < exact_result.n_exact_comparisons / 20


def test_bench_epm_vs_julisch_aoi(benchmark, paper_run, results_dir):
    """EPM (flat wildcards) vs full Julisch AOI (taxonomy lattice) on mu.

    The paper calls EPM "a simplification of the multidimensional
    clustering technique described by Julisch"; this ablation runs the
    unsimplified original with size-band and port taxonomies and
    compares the resulting structure.
    """
    from repro.core.features import mu_features
    from repro.core.hierarchy import AOIMiner, band_taxonomy

    feature_set = mu_features()
    names = feature_set.names
    instances = [
        feature_set.extract(e)
        for e in paper_run.dataset
        if feature_set.applies_to(e)
    ]
    sizes = [v[names.index("size")] for v in instances]
    miner = AOIMiner(
        names,
        {"size": band_taxonomy(sizes, width=8192, label="size")},
        min_size=10,
    )
    result = benchmark.pedantic(lambda: miner.fit(instances), rounds=1, iterations=1)

    table = TextTable(
        ["technique", "mu patterns"],
        title="Ablation: EPM masking vs Julisch attribute-oriented induction",
    )
    table.add_row(["EPM (flat wildcard lattice)", paper_run.epm.mu.n_clusters])
    table.add_row(["Julisch AOI (size-band taxonomy)", result.n_patterns])
    text = table.render() + (
        "\nAOI keeps weak patterns at intermediate concepts (size bands)"
        "\ninstead of collapsing them to '*': more, finer junk bins."
    )
    write_report(results_dir, "ablation_aoi", text)
    print("\n" + text)

    assert result.n_patterns > 0
    # Every AOI pattern respects the support floor (or is the root bin).
    weak = [p for p, s in result.support.items() if s < 10]
    from repro.core.hierarchy import ANY

    assert all(all(v is ANY for v in p) for p in weak)


def test_bench_linkage_choice(benchmark, paper_run, results_dir):
    """Single vs average vs complete linkage on real profiles.

    §4.2 blames single-linkage chaining for part of the clustering
    anomalies; this ablation shows how the B-structure shifts under
    stricter linkages at the same threshold.
    """
    from repro.sandbox.linkage import cluster_hierarchical

    profiles = dict(list(paper_run.anubis.profiles().items())[:1200])
    config = paper_run.config.clustering

    results = benchmark.pedantic(
        lambda: {
            method: cluster_hierarchical(profiles, config, method=method)
            for method in ("single", "average", "complete")
        },
        rounds=1,
        iterations=1,
    )

    table = TextTable(
        ["linkage", "B-clusters", "singletons", "largest"],
        title="Ablation: linkage choice at t=0.7 (1200-sample slice)",
    )
    for method, result in results.items():
        sizes = result.sizes().values()
        table.add_row(
            [
                method,
                result.n_clusters,
                len(result.singletons()),
                max(sizes) if sizes else 0,
            ]
        )
    text = table.render() + (
        "\n(single linkage merges through chains; the paper names it as a"
        "\n source of the observed clustering bias)"
    )
    write_report(results_dir, "ablation_linkage", text)
    print("\n" + text)

    assert (
        results["single"].n_clusters
        <= results["average"].n_clusters
        <= results["complete"].n_clusters
    )


def test_bench_fsm_learning_economics(benchmark, paper_run, results_dir):
    ratios = benchmark(paper_run.deployment.proxy_ratio_by_week)
    weeks = sorted(ratios)
    first_quarter = [ratios[w] for w in weeks[: len(weeks) // 4]]
    last_quarter = [ratios[w] for w in weeks[-len(weeks) // 4 :]]
    early = sum(first_quarter) / len(first_quarter)
    late = sum(last_quarter) / len(last_quarter)

    table = TextTable(
        ["phase", "proxy ratio"],
        title="Ablation: honeyfarm load vs FSM learning (ScriptGen economics)",
    )
    table.add_row(["first quarter of observation", f"{early:.3f}"])
    table.add_row(["last quarter of observation", f"{late:.3f}"])
    text = table.render()
    write_report(results_dir, "ablation_fsm", text)
    print("\n" + text)

    assert late < early * 0.5  # sensors become largely autonomous
