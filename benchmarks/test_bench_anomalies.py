"""§4.2: size-1 B-cluster anomaly detection and re-execution healing.

Regenerates: 860-of-972 singleton counts, the anomaly/rarity breakdown,
and the healing result.  The benchmark measures the cross-view anomaly
detection (the analysis the paper argues would be impossible from the
behavioural view alone).
"""

from repro.analysis.crossview import CrossView
from repro.experiments.drivers import anomaly_report

from benchmarks.conftest import write_report


def test_bench_singleton_anomaly_detection(benchmark, paper_run, results_dir):
    def detect():
        crossview = CrossView(paper_run.dataset, paper_run.epm, paper_run.bclusters)
        return crossview.singleton_anomalies()

    anomalies = benchmark(detect)
    assert len(anomalies) > 400

    result, text = anomaly_report(paper_run, heal=True)
    write_report(results_dir, "anomalies", text)
    print("\n" + text)

    summary = result["summary"]
    # Paper shape: singletons dominate the B-clustering; the vast
    # majority are artifacts, a small minority genuine rarities; healing
    # by re-execution collapses the artifact population.
    assert summary["singleton_b_clusters"] / paper_run.bclusters.n_clusters > 0.75
    assert summary["singleton_anomalies"] > 5 * summary["rare_singletons"]
    healed = result["healed_summary"]
    assert healed["singleton_b_clusters"] < summary["singleton_b_clusters"] * 0.35
