"""Quality and evasion benches (beyond the paper's tables).

* Clustering-quality scoring of both perspectives against the
  simulator's ground truth — the quantitative footing under the paper's
  qualitative comparisons.
* The evasion experiment: EPM against the "more sophisticated
  polymorphic engine" the paper anticipates.
"""

from repro.analysis.quality import (
    av_label_consistency,
    ground_truth_labels,
    precision_recall,
)
from repro.experiments.evasion import evasion_experiment
from repro.malware.polymorphism import PolymorphyMode
from repro.util.tables import TextTable

from benchmarks.conftest import write_report


def test_bench_cluster_quality(benchmark, paper_run, results_dir):
    truth_variant = ground_truth_labels(paper_run.dataset, level="variant")
    truth_family = ground_truth_labels(paper_run.dataset, level="family")
    m_assignment = {
        md5: cluster
        for md5, cluster in paper_run.epm.m_cluster_of_samples(
            paper_run.dataset
        ).items()
        if not paper_run.dataset.samples[md5].observable.corrupted
    }
    b_assignment = dict(paper_run.bclusters.assignment)

    def score_all():
        return (
            precision_recall(m_assignment, truth_variant),
            precision_recall(b_assignment, truth_family),
        )

    m_score, b_score = benchmark(score_all)

    table = TextTable(
        ["perspective", "reference", "precision", "recall", "F1"],
        title="Cluster quality vs simulation ground truth",
    )
    table.add_row(
        ["EPM M-clusters", "variant", f"{m_score.precision:.3f}",
         f"{m_score.recall:.3f}", f"{m_score.f1:.3f}"]
    )
    table.add_row(
        ["B-clusters", "family", f"{b_score.precision:.3f}",
         f"{b_score.recall:.3f}", f"{b_score.f1:.3f}"]
    )
    consistency = av_label_consistency(paper_run.dataset)
    text = table.render() + (
        f"\ncross-engine AV family-name agreement: {consistency:.1%}"
        " (the aliasing problem behind the paper's distrust of AV labels)"
    )
    write_report(results_dir, "quality", text)
    print("\n" + text)

    # Static view: precise at variant level, recall dented only by junk
    # bins.  Behavioural view: precise but recall-limited by the size-1
    # anomaly tail (what §4.2 is about).
    assert m_score.precision > 0.9
    assert m_score.recall > 0.75
    assert b_score.precision > 0.9
    assert b_score.recall < m_score.recall
    assert consistency < 0.5


def test_bench_evasion(benchmark, results_dir):
    outcomes = benchmark.pedantic(
        lambda: evasion_experiment(seed=2010, n_variants=10, n_weeks=12),
        rounds=1,
        iterations=1,
    )
    table = TextTable(
        ["engine", "M-clusters", "precision", "recall", "F1"],
        title="Evasion: EPM vs polymorphic-engine sophistication",
    )
    for mode in (PolymorphyMode.PER_INSTANCE, PolymorphyMode.REPACK):
        outcome = outcomes[mode]
        quality = outcome.quality
        table.add_row(
            [
                mode.value,
                outcome.n_m_clusters,
                f"{quality.precision:.2f}",
                f"{quality.recall:.2f}",
                f"{quality.f1:.2f}",
            ]
        )
    text = table.render() + (
        "\n(the paper: EPM 'could be easily evaded in the future by more"
        " sophisticated polymorphic engines' - quantified here)"
    )
    write_report(results_dir, "evasion", text)
    print("\n" + text)

    honest = outcomes[PolymorphyMode.PER_INSTANCE].quality
    evaded = outcomes[PolymorphyMode.REPACK].quality
    assert honest.f1 > 0.8
    assert evaded.f1 < honest.f1 / 2
