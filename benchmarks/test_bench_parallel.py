"""Parallel-backend speedup and cache warm-load benches (full scale).

These quantify the two perf levers this stage of the roadmap adds: the
process-pool execution backend (against the serial baseline, with a
bit-identical-artifacts assertion) and the scenario artifact cache
(warm load vs full rebuild).  Both need the full-scale scenario, so
both are ``slow``/opt-in; the speedup bench additionally needs real
cores and skips on single-core machines.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.cache import ScenarioCache
from repro.experiments.scenario import PaperScenario, ScenarioConfig

from benchmarks.conftest import PAPER_SEED, write_report

#: The stages the executor backends actually parallelise; ``observe``
#: is inherently sequential (one global event stream) and excluded.
PARALLEL_STAGES = ("enrich", "epm", "bcluster")


@pytest.mark.slow
def test_bench_parallel_speedup(results_dir):
    """Process backend vs serial baseline on the parallelisable stages."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("speedup bench needs a multi-core machine")

    serial = PaperScenario(
        seed=PAPER_SEED, config=ScenarioConfig(executor="serial")
    ).run()
    parallel = PaperScenario(
        seed=PAPER_SEED, config=ScenarioConfig(executor="process")
    ).run()

    # Parallelism may never perturb the artifacts.
    assert parallel.headline() == serial.headline()
    assert parallel.bclusters.assignment == serial.bclusters.assignment

    serial_stages = serial.timings.as_dict()
    parallel_stages = parallel.timings.as_dict()
    serial_cost = sum(serial_stages[name] for name in PARALLEL_STAGES)
    parallel_cost = sum(parallel_stages[name] for name in PARALLEL_STAGES)
    speedup = serial_cost / parallel_cost if parallel_cost else float("inf")

    lines = [
        "Parallel execution: process backend vs serial baseline",
        f"cores: {os.cpu_count()}",
        f"serial total:   {serial.timings.total:8.2f} s",
        f"process total:  {parallel.timings.total:8.2f} s",
        f"parallel stages ({'+'.join(PARALLEL_STAGES)}): "
        f"{serial_cost:.2f} s -> {parallel_cost:.2f} s ({speedup:.2f}x)",
    ]
    write_report(results_dir, "parallel", "\n".join(lines))
    assert speedup >= 1.5


@pytest.mark.slow
def test_bench_cache_warm_load(paper_run, results_dir):
    """Warm cache load must beat the recorded rebuild by >= 10x."""
    cache = ScenarioCache()
    cache.store(paper_run)  # ensure the entry exists whatever built the fixture

    started = time.perf_counter()
    loaded = cache.load(PAPER_SEED, paper_run.config)
    load_seconds = time.perf_counter() - started

    assert loaded is not None
    assert loaded.headline() == paper_run.headline()
    assert loaded.bclusters.assignment == paper_run.bclusters.assignment

    build_seconds = paper_run.timings.total
    speedup = build_seconds / load_seconds if load_seconds else float("inf")
    write_report(
        results_dir,
        "cache",
        "\n".join(
            [
                "Scenario artifact cache: warm load vs rebuild",
                f"rebuild: {build_seconds:8.2f} s",
                f"load:    {load_seconds:8.4f} s",
                f"speedup: {speedup:8.0f}x",
            ]
        ),
    )
    assert speedup >= 10
